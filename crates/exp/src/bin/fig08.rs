//! Figure 8: time to steady state for High vs Low uncertainty guardbands.
fn main() {
    let cfg = mimo_exp::experiments::ExpConfig::full();
    mimo_exp::experiments::fig08(&cfg).expect("fig08");
}
