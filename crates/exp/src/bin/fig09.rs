//! Figure 9: Energy×Delay minimization with two inputs.
use mimo_core::optimizer::Metric;
use mimo_exp::experiments::{optimization_experiment, ExpConfig};
use mimo_sim::InputSet;
fn main() {
    let cfg = ExpConfig::full();
    let r = optimization_experiment(&cfg, InputSet::FreqCache, Metric::EnergyDelay).expect("fig09");
    println!("paper: MIMO -16%, Heuristic -4%, Decoupled +3% | measured: MIMO {:+.1}%, Heuristic {:+.1}%, Decoupled {:+.1}%",
        (r.avg_mimo - 1.0) * 100.0, (r.avg_heuristic - 1.0) * 100.0,
        (r.avg_decoupled.unwrap_or(f64::NAN) - 1.0) * 100.0);
}
