//! Figure 7: maximum model prediction error vs model dimension.
fn main() {
    let cfg = mimo_exp::experiments::ExpConfig::full();
    mimo_exp::experiments::fig07(&cfg).expect("fig07");
}
