//! Figure 6 / Table V: impact of input and output weight choices.
fn main() {
    let cfg = mimo_exp::experiments::ExpConfig::full();
    mimo_exp::experiments::fig06(&cfg).expect("fig06");
}
