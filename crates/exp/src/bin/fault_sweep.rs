//! Fault sweep: transient fault rate × arbitration policy on a 16-core
//! MIMO fleet, measuring tracking degradation, quarantines, and throughput.
//!
//! Usage: `fault_sweep [--epochs N]` (default: the full 600-epoch sweep).
fn main() {
    let mut cfg = mimo_exp::experiments::ExpConfig::full();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--epochs" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .expect("--epochs needs a positive integer");
                cfg.tracking_epochs = n;
            }
            other => panic!("unknown argument {other:?}; usage: fault_sweep [--epochs N]"),
        }
    }
    let points = mimo_exp::experiments::fault_sweep(&cfg).expect("fault_sweep");
    for p in &points {
        if p.fault_rate == 0.0 {
            assert_eq!(
                p.stats.fault_epochs, 0,
                "zero-rate run faulted ({})",
                p.stats.policy
            );
            assert_eq!(
                p.stats.quarantined_cores, 0,
                "zero-rate run quarantined cores ({})",
                p.stats.policy
            );
        }
    }
    println!("done; results/fault_sweep.csv");
}
