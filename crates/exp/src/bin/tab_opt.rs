//! §VIII-F text: E and E×D² reductions with two inputs.
use mimo_core::optimizer::Metric;
use mimo_exp::experiments::{optimization_experiment, ExpConfig};
use mimo_sim::InputSet;
fn main() {
    let cfg = ExpConfig::full();
    let e = optimization_experiment(&cfg, InputSet::FreqCache, Metric::Energy).expect("E");
    let ed2 = optimization_experiment(&cfg, InputSet::FreqCache, Metric::EnergyDelaySquared)
        .expect("ED2");
    println!("E    — paper: MIMO -9%, Heuristic -1%, Decoupled 0% | measured: {:+.1}% / {:+.1}% / {:+.1}%",
        (e.avg_mimo-1.0)*100.0, (e.avg_heuristic-1.0)*100.0, (e.avg_decoupled.unwrap()-1.0)*100.0);
    println!("E×D² — paper: MIMO -18%, Heuristic -7%, Decoupled -4% | measured: {:+.1}% / {:+.1}% / {:+.1}%",
        (ed2.avg_mimo-1.0)*100.0, (ed2.avg_heuristic-1.0)*100.0, (ed2.avg_decoupled.unwrap()-1.0)*100.0);
}
