//! Figure 10: Energy×Delay minimization with three inputs (ROB added).
use mimo_core::optimizer::Metric;
use mimo_exp::experiments::{optimization_experiment, ExpConfig};
use mimo_sim::InputSet;
fn main() {
    let cfg = ExpConfig::full();
    let r =
        optimization_experiment(&cfg, InputSet::FreqCacheRob, Metric::EnergyDelay).expect("fig10");
    println!(
        "paper: MIMO -25%, Heuristic -12% | measured: MIMO {:+.1}%, Heuristic {:+.1}%",
        (r.avg_mimo - 1.0) * 100.0,
        (r.avg_heuristic - 1.0) * 100.0
    );
}
