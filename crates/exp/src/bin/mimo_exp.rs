//! `mimo-exp` — the unified experiment CLI.
//!
//! One binary replaces the old per-figure executables: every paper
//! artifact is a subcommand, and the sizing/output knobs are shared flags.
//!
//! ```text
//! mimo-exp [SUBCOMMAND] [--epochs N] [--jobs N] [--out DIR] [--timing] [--trace PATH]
//! ```
//!
//! With no subcommand the full suite runs (the old `all` binary). Grid
//! cells fan out across `--jobs` workers; output is bit-identical at any
//! job count, so `--jobs` only changes wall-clock.

use std::process::ExitCode;
use std::time::Instant;

use mimo_core::optimizer::Metric;
use mimo_core::telemetry::TelemetryConfig;
use mimo_exp::experiments::{self, ExpConfig};
use mimo_exp::par;
use mimo_exp::report::ResultsDir;
use mimo_exp::timing::TimingSink;
use mimo_sim::InputSet;

const USAGE: &str = "\
mimo-exp — reproduce the paper's evaluation (figures, tables, fleet runs)

USAGE:
    mimo-exp [SUBCOMMAND] [FLAGS]

SUBCOMMANDS:
    all          run the complete suite (default)
    fig06        Figure 6 / Table V: weight-choice sensitivity
    fig07        Figure 7: model error vs state dimension
    fig08        Figure 8: convergence under uncertainty guardbands
    fig09        Figure 9: E×D minimization, 2 inputs
    fig10        Figure 10: E×D minimization, 3 inputs
    fig11        Figure 11: tracking-error scatter
    fig12        Figure 12: time-varying (QoE/battery) tracking
    tab-opt      §VIII-F text: E and E×D² reductions
    fleet-scale  fleet sizes × worker counts under one chip budget
    cluster-scale  chips × cores-per-chip under one datacenter budget,
                 sharded chip-parallel with shared-LLC contention
    fault-sweep  fault rate × arbitration policy on a 16-core fleet
    bench        time the LQG step and a 16-core fleet sweep on the
                 dynamic and static storage paths; writes
                 BENCH_controller.json to the results directory

FLAGS:
    --epochs N    epochs per tracking run (default: paper-scale 4000)
    --jobs N      worker threads for experiment grid cells (default: the
                  host's available parallelism, or the MIMO_JOBS env var;
                  N >= 1 — results are bit-identical at any job count)
    --out DIR     directory CSVs land in (default: nearest results/)
    --timing      record per-subcommand and per-cell wall-clock into
                  BENCH_harness.json in the results directory (for
                  cluster-scale this includes per-chip stepping time)
    --shards N    cluster-scale only: pin the shard count instead of
                  sweeping {1, 2, 4, 8}; the CSV is byte-identical at any
                  value (the CI determinism job diffs them)
    --trace PATH  fault-sweep only: write a JSONL epoch trace of the
                  sweep's most eventful run (per-core ring-buffer sinks)
    -h, --help    print this help
";

/// Ring capacity per core when `--trace` is on: enough to keep every
/// epoch of a CI-sized sweep and the recent tail of a full one.
const TRACE_CAPACITY: usize = 256;

struct Cli {
    command: String,
    epochs: Option<usize>,
    jobs: Option<usize>,
    out: Option<String>,
    timing: bool,
    shards: Option<usize>,
    trace: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        command: String::from("all"),
        epochs: None,
        jobs: None,
        out: None,
        timing: false,
        shards: None,
        trace: None,
    };
    let mut saw_command = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--epochs" => {
                let v = it.next().ok_or("--epochs needs a value")?;
                cli.epochs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--epochs needs a positive integer, got {v:?}"))?,
                );
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                cli.jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--jobs needs a positive integer, got {v:?}"))?,
                );
            }
            "--out" => {
                cli.out = Some(it.next().ok_or("--out needs a directory")?.clone());
            }
            "--timing" => cli.timing = true,
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("--shards needs a positive integer, got {v:?}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".into());
                }
                cli.shards = Some(n);
            }
            "--trace" => {
                cli.trace = Some(it.next().ok_or("--trace needs a path")?.clone());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}"));
            }
            cmd if !saw_command => {
                saw_command = true;
                cli.command = cmd.to_string();
            }
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    let known = [
        "all",
        "fig06",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "tab-opt",
        "fleet-scale",
        "cluster-scale",
        "fault-sweep",
        "bench",
    ];
    if !known.contains(&cli.command.as_str()) {
        return Err(format!("unknown subcommand {:?}", cli.command));
    }
    if cli.trace.is_some() && cli.command != "fault-sweep" {
        return Err("--trace is only meaningful with the fault-sweep subcommand".into());
    }
    if cli.shards.is_some() && cli.command != "cluster-scale" {
        return Err("--shards is only meaningful with the cluster-scale subcommand".into());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let jobs = match par::resolve_jobs(cli.jobs) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = ExpConfig::full();
    cfg.jobs = jobs;
    cfg.results = match &cli.out {
        Some(dir) => ResultsDir::new(dir.clone()),
        None => ResultsDir::discover(),
    };
    if cli.timing {
        cfg.timing = TimingSink::enabled();
    }
    if let Some(n) = cli.epochs {
        cfg.tracking_epochs = n;
    }

    let start = Instant::now();
    let failures = match cli.command.as_str() {
        "all" => run_all(&cfg),
        name => {
            let r = cfg.timing.subcommand(name, || run_one(&cfg, name, &cli));
            collect_failure(name, r)
        }
    };
    let wall_s = start.elapsed().as_secs_f64();

    let (hits, misses) = cfg.cache.stats();
    if hits + misses > 0 {
        println!("design cache: {hits} hits, {misses} misses");
    }
    if cfg.timing.is_enabled() {
        let doc = cfg
            .timing
            .render_json(cfg.jobs, cfg.tracking_epochs, wall_s, hits, misses);
        match cfg.results.write_text("BENCH_harness.json", &doc) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write BENCH_harness.json: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (name, msg) in &failures {
            eprintln!("error: {name} failed: {msg}");
        }
        ExitCode::FAILURE
    }
}

/// Runs one non-`all` subcommand; errors bubble up instead of panicking so
/// a failing grid cell reports which cell died.
fn run_one(cfg: &ExpConfig, name: &str, cli: &Cli) -> Result<(), String> {
    match name {
        "fig06" => experiments::fig06(cfg).map(drop).map_err(|e| e.to_string()),
        "fig07" => experiments::fig07(cfg).map(drop).map_err(|e| e.to_string()),
        "fig08" => experiments::fig08(cfg).map(drop).map_err(|e| e.to_string()),
        "fig09" => run_fig09(cfg),
        "fig10" => run_fig10(cfg),
        "fig11" => experiments::fig11(cfg).map(drop).map_err(|e| e.to_string()),
        "fig12" => experiments::fig12(cfg).map(drop).map_err(|e| e.to_string()),
        "tab-opt" => run_tab_opt(cfg),
        "fleet-scale" => run_fleet_scale(cfg),
        "cluster-scale" => run_cluster_scale(cfg, cli.shards),
        "fault-sweep" => run_fault_sweep(cfg, cli.trace.as_deref()),
        "bench" => run_bench(cfg),
        _ => unreachable!("parse_args validated the subcommand"),
    }
}

fn collect_failure(name: &str, r: Result<(), String>) -> Vec<(String, String)> {
    match r {
        Ok(()) => Vec::new(),
        Err(msg) => vec![(name.to_string(), msg)],
    }
}

/// One `all` step: CLI name, heading, and runner.
type Step = (
    &'static str,
    &'static str,
    fn(&ExpConfig) -> Result<(), String>,
);

/// The complete evaluation suite (the old `all` binary). A failing
/// subcommand is reported and the rest of the suite still runs, so one
/// bad cell costs one figure, not the whole evaluation.
fn run_all(cfg: &ExpConfig) -> Vec<(String, String)> {
    let mut failures = Vec::new();
    let steps: &[Step] = &[
        ("fig06", "Figure 6 — weight sensitivity", |c| {
            experiments::fig06(c).map(drop).map_err(|e| e.to_string())
        }),
        ("fig07", "Figure 7 — model dimension", |c| {
            experiments::fig07(c).map(drop).map_err(|e| e.to_string())
        }),
        ("fig08", "Figure 8 — uncertainty guardbands", |c| {
            experiments::fig08(c).map(drop).map_err(|e| e.to_string())
        }),
        ("fig11", "Figure 11 — tracking multiple references", |c| {
            experiments::fig11(c).map(drop).map_err(|e| e.to_string())
        }),
        ("fig12", "Figure 12 — time-varying tracking", |c| {
            experiments::fig12(c).map(drop).map_err(|e| e.to_string())
        }),
        ("fig09", "Figure 9 — E×D, 2 inputs", |c| run_fig09(c)),
        ("fig10", "Figure 10 — E×D, 3 inputs", |c| run_fig10(c)),
        ("tab-opt", "§VIII-F — E and E×D²", |c| run_tab_opt(c)),
        (
            "fleet-scale",
            "Fleet scaling — chip-budgeted many-core runtime",
            |c| run_fleet_scale(c),
        ),
        (
            "cluster-scale",
            "Cluster scaling — hierarchical multi-chip runtime",
            |c| run_cluster_scale(c, None),
        ),
    ];
    for (name, title, step) in steps {
        println!("### {title}");
        if let Err(msg) = cfg.timing.subcommand(name, || step(cfg)) {
            eprintln!("error: {name} failed: {msg} (continuing)");
            failures.push((name.to_string(), msg));
        }
    }
    println!("done; CSVs in {}", cfg.results.path().display());
    failures
}

fn run_fig09(cfg: &ExpConfig) -> Result<(), String> {
    let r = experiments::optimization_experiment(cfg, InputSet::FreqCache, Metric::EnergyDelay)
        .map_err(|e| e.to_string())?;
    println!("paper: MIMO -16%, Heuristic -4%, Decoupled +3% | measured: MIMO {:+.1}%, Heuristic {:+.1}%, Decoupled {:+.1}%",
        (r.avg_mimo - 1.0) * 100.0, (r.avg_heuristic - 1.0) * 100.0,
        (r.avg_decoupled.unwrap_or(f64::NAN) - 1.0) * 100.0);
    Ok(())
}

fn run_fig10(cfg: &ExpConfig) -> Result<(), String> {
    let r = experiments::optimization_experiment(cfg, InputSet::FreqCacheRob, Metric::EnergyDelay)
        .map_err(|e| e.to_string())?;
    println!(
        "paper: MIMO -25%, Heuristic -12% | measured: MIMO {:+.1}%, Heuristic {:+.1}%",
        (r.avg_mimo - 1.0) * 100.0,
        (r.avg_heuristic - 1.0) * 100.0
    );
    Ok(())
}

fn run_tab_opt(cfg: &ExpConfig) -> Result<(), String> {
    let e = experiments::optimization_experiment(cfg, InputSet::FreqCache, Metric::Energy)
        .map_err(|e| e.to_string())?;
    let ed2 =
        experiments::optimization_experiment(cfg, InputSet::FreqCache, Metric::EnergyDelaySquared)
            .map_err(|e| e.to_string())?;
    let dec = |r: &experiments::OptResult| (r.avg_decoupled.unwrap_or(f64::NAN) - 1.0) * 100.0;
    println!("E    — paper: MIMO -9%, Heuristic -1%, Decoupled 0% | measured: {:+.1}% / {:+.1}% / {:+.1}%",
        (e.avg_mimo-1.0)*100.0, (e.avg_heuristic-1.0)*100.0, dec(&e));
    println!("E×D² — paper: MIMO -18%, Heuristic -7%, Decoupled -4% | measured: {:+.1}% / {:+.1}% / {:+.1}%",
        (ed2.avg_mimo-1.0)*100.0, (ed2.avg_heuristic-1.0)*100.0, dec(&ed2));
    Ok(())
}

fn run_fleet_scale(cfg: &ExpConfig) -> Result<(), String> {
    let points = experiments::fleet_scale(cfg).map_err(|e| e.to_string())?;
    for pair in points.chunks(2) {
        if !pair.iter().all(|p| p.digest == pair[0].digest) {
            return Err(format!(
                "worker count changed results at N={}",
                pair[0].stats.n_cores
            ));
        }
    }
    println!("done; {}", cfg.results.join("fleet_scale.csv").display());
    Ok(())
}

fn run_cluster_scale(cfg: &ExpConfig, shards: Option<usize>) -> Result<(), String> {
    let points = experiments::cluster_scale(cfg, shards).map_err(|e| e.to_string())?;
    for p in &points {
        if !p.digests.iter().all(|&(_, d)| d == p.digests[0].1) {
            return Err(format!(
                "shard count changed results at {} chips x {} cores: {:?}",
                p.stats.n_chips,
                p.stats.total_cores / p.stats.n_chips.max(1),
                p.digests
            ));
        }
    }
    println!("done; {}", cfg.results.join("cluster_scale.csv").display());
    Ok(())
}

fn run_bench(cfg: &ExpConfig) -> Result<(), String> {
    let b = mimo_exp::bench::run()?;
    println!(
        "lqg step: {:.0} ns dynamic, {:.0} ns static ({:.2}x)",
        b.lqg_step_dynamic_ns,
        b.lqg_step_static_ns,
        b.step_speedup()
    );
    println!(
        "fleet 16c/50e: {:.2} ms dynamic, {:.2} ms static ({:.2}x)",
        b.fleet_epoch_dynamic_ms,
        b.fleet_epoch_static_ms,
        b.fleet_speedup()
    );
    let doc = mimo_exp::bench::render_json(&b);
    let path = cfg
        .results
        .write_text("BENCH_controller.json", &doc)
        .map_err(|e| format!("write BENCH_controller.json: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn run_fault_sweep(cfg: &ExpConfig, trace: Option<&str>) -> Result<(), String> {
    let telemetry = trace.map(|_| TelemetryConfig::trace(TRACE_CAPACITY));
    let (points, tele) =
        experiments::fault_sweep_traced(cfg, telemetry).map_err(|e| e.to_string())?;
    for p in &points {
        if p.fault_rate == 0.0 {
            if p.stats.fault_epochs != 0 {
                return Err(format!("zero-rate run faulted ({})", p.stats.policy));
            }
            if p.stats.quarantined_cores != 0 {
                return Err(format!(
                    "zero-rate run quarantined cores ({})",
                    p.stats.policy
                ));
            }
        }
    }
    if let Some(path) = trace {
        let tele = tele.ok_or("--trace enabled telemetry but the sweep returned none")?;
        tele.save_jsonl(path)
            .map_err(|e| format!("write JSONL trace: {e}"))?;
        println!(
            "wrote {path} ({} cores, {} quarantines)",
            tele.per_core.len(),
            tele.quarantines().len()
        );
    }
    println!("done; {}", cfg.results.join("fault_sweep.csv").display());
    Ok(())
}
