//! `mimo-exp` — the unified experiment CLI.
//!
//! One binary replaces the old per-figure executables: every paper
//! artifact is a subcommand, and the sizing/output knobs are shared flags.
//!
//! ```text
//! mimo-exp [SUBCOMMAND] [--epochs N] [--out DIR] [--trace PATH]
//! ```
//!
//! With no subcommand the full suite runs (the old `all` binary).

use std::process::ExitCode;

use mimo_core::optimizer::Metric;
use mimo_core::telemetry::TelemetryConfig;
use mimo_exp::experiments::{self, ExpConfig};
use mimo_exp::report;
use mimo_sim::InputSet;

const USAGE: &str = "\
mimo-exp — reproduce the paper's evaluation (figures, tables, fleet runs)

USAGE:
    mimo-exp [SUBCOMMAND] [FLAGS]

SUBCOMMANDS:
    all          run the complete suite (default)
    fig06        Figure 6 / Table V: weight-choice sensitivity
    fig07        Figure 7: model error vs state dimension
    fig08        Figure 8: convergence under uncertainty guardbands
    fig09        Figure 9: E×D minimization, 2 inputs
    fig10        Figure 10: E×D minimization, 3 inputs
    fig11        Figure 11: tracking-error scatter
    fig12        Figure 12: time-varying (QoE/battery) tracking
    tab-opt      §VIII-F text: E and E×D² reductions
    fleet-scale  fleet sizes × worker counts under one chip budget
    fault-sweep  fault rate × arbitration policy on a 16-core fleet

FLAGS:
    --epochs N    epochs per tracking run (default: paper-scale 4000)
    --out DIR     directory CSVs land in (default: nearest results/)
    --trace PATH  fault-sweep only: write a JSONL epoch trace of the
                  sweep's most eventful run (per-core ring-buffer sinks)
    -h, --help    print this help
";

/// Ring capacity per core when `--trace` is on: enough to keep every
/// epoch of a CI-sized sweep and the recent tail of a full one.
const TRACE_CAPACITY: usize = 256;

struct Cli {
    command: String,
    epochs: Option<usize>,
    out: Option<String>,
    trace: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        command: String::from("all"),
        epochs: None,
        out: None,
        trace: None,
    };
    let mut saw_command = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--epochs" => {
                let v = it.next().ok_or("--epochs needs a value")?;
                cli.epochs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--epochs needs a positive integer, got {v:?}"))?,
                );
            }
            "--out" => {
                cli.out = Some(it.next().ok_or("--out needs a directory")?.clone());
            }
            "--trace" => {
                cli.trace = Some(it.next().ok_or("--trace needs a path")?.clone());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}"));
            }
            cmd if !saw_command => {
                saw_command = true;
                cli.command = cmd.to_string();
            }
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    let known = [
        "all",
        "fig06",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "tab-opt",
        "fleet-scale",
        "fault-sweep",
    ];
    if !known.contains(&cli.command.as_str()) {
        return Err(format!("unknown subcommand {:?}", cli.command));
    }
    if cli.trace.is_some() && cli.command != "fault-sweep" {
        return Err("--trace is only meaningful with the fault-sweep subcommand".into());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(dir) = &cli.out {
        report::set_results_dir(dir.clone());
    }
    let mut cfg = ExpConfig::full();
    if let Some(n) = cli.epochs {
        cfg.tracking_epochs = n;
    }

    match cli.command.as_str() {
        "all" => run_all(&cfg),
        "fig06" => {
            experiments::fig06(&cfg).expect("fig06");
        }
        "fig07" => {
            experiments::fig07(&cfg).expect("fig07");
        }
        "fig08" => {
            experiments::fig08(&cfg).expect("fig08");
        }
        "fig09" => run_fig09(&cfg),
        "fig10" => run_fig10(&cfg),
        "fig11" => {
            experiments::fig11(&cfg).expect("fig11");
        }
        "fig12" => {
            experiments::fig12(&cfg).expect("fig12");
        }
        "tab-opt" => run_tab_opt(&cfg),
        "fleet-scale" => run_fleet_scale(&cfg),
        "fault-sweep" => run_fault_sweep(&cfg, cli.trace.as_deref()),
        _ => unreachable!("parse_args validated the subcommand"),
    }
    ExitCode::SUCCESS
}

/// The complete evaluation suite (the old `all` binary).
fn run_all(cfg: &ExpConfig) {
    println!("### Figure 6 — weight sensitivity");
    experiments::fig06(cfg).expect("fig06");
    println!("### Figure 7 — model dimension");
    experiments::fig07(cfg).expect("fig07");
    println!("### Figure 8 — uncertainty guardbands");
    experiments::fig08(cfg).expect("fig08");
    println!("### Figure 11 — tracking multiple references");
    experiments::fig11(cfg).expect("fig11");
    println!("### Figure 12 — time-varying tracking");
    experiments::fig12(cfg).expect("fig12");
    println!("### Figure 9 — E×D, 2 inputs");
    experiments::optimization_experiment(cfg, InputSet::FreqCache, Metric::EnergyDelay)
        .expect("fig09");
    println!("### Figure 10 — E×D, 3 inputs");
    experiments::optimization_experiment(cfg, InputSet::FreqCacheRob, Metric::EnergyDelay)
        .expect("fig10");
    println!("### §VIII-F — E and E×D²");
    experiments::optimization_experiment(cfg, InputSet::FreqCache, Metric::Energy).expect("E");
    experiments::optimization_experiment(cfg, InputSet::FreqCache, Metric::EnergyDelaySquared)
        .expect("ED2");
    println!("### Fleet scaling — chip-budgeted many-core runtime");
    experiments::fleet_scale(cfg).expect("fleet_scale");
    println!("done; CSVs in {}", report::results_dir().display());
}

fn run_fig09(cfg: &ExpConfig) {
    let r = experiments::optimization_experiment(cfg, InputSet::FreqCache, Metric::EnergyDelay)
        .expect("fig09");
    println!("paper: MIMO -16%, Heuristic -4%, Decoupled +3% | measured: MIMO {:+.1}%, Heuristic {:+.1}%, Decoupled {:+.1}%",
        (r.avg_mimo - 1.0) * 100.0, (r.avg_heuristic - 1.0) * 100.0,
        (r.avg_decoupled.unwrap_or(f64::NAN) - 1.0) * 100.0);
}

fn run_fig10(cfg: &ExpConfig) {
    let r = experiments::optimization_experiment(cfg, InputSet::FreqCacheRob, Metric::EnergyDelay)
        .expect("fig10");
    println!(
        "paper: MIMO -25%, Heuristic -12% | measured: MIMO {:+.1}%, Heuristic {:+.1}%",
        (r.avg_mimo - 1.0) * 100.0,
        (r.avg_heuristic - 1.0) * 100.0
    );
}

fn run_tab_opt(cfg: &ExpConfig) {
    let e =
        experiments::optimization_experiment(cfg, InputSet::FreqCache, Metric::Energy).expect("E");
    let ed2 =
        experiments::optimization_experiment(cfg, InputSet::FreqCache, Metric::EnergyDelaySquared)
            .expect("ED2");
    println!("E    — paper: MIMO -9%, Heuristic -1%, Decoupled 0% | measured: {:+.1}% / {:+.1}% / {:+.1}%",
        (e.avg_mimo-1.0)*100.0, (e.avg_heuristic-1.0)*100.0, (e.avg_decoupled.unwrap()-1.0)*100.0);
    println!("E×D² — paper: MIMO -18%, Heuristic -7%, Decoupled -4% | measured: {:+.1}% / {:+.1}% / {:+.1}%",
        (ed2.avg_mimo-1.0)*100.0, (ed2.avg_heuristic-1.0)*100.0, (ed2.avg_decoupled.unwrap()-1.0)*100.0);
}

fn run_fleet_scale(cfg: &ExpConfig) {
    let points = experiments::fleet_scale(cfg).expect("fleet_scale");
    for pair in points.chunks(2) {
        assert!(
            pair.iter().all(|p| p.digest == pair[0].digest),
            "worker count changed results at N={}",
            pair[0].stats.n_cores
        );
    }
    println!(
        "done; {}",
        report::results_dir().join("fleet_scale.csv").display()
    );
}

fn run_fault_sweep(cfg: &ExpConfig, trace: Option<&str>) {
    let telemetry = trace.map(|_| TelemetryConfig::trace(TRACE_CAPACITY));
    let (points, tele) = experiments::fault_sweep_traced(cfg, telemetry).expect("fault_sweep");
    for p in &points {
        if p.fault_rate == 0.0 {
            assert_eq!(
                p.stats.fault_epochs, 0,
                "zero-rate run faulted ({})",
                p.stats.policy
            );
            assert_eq!(
                p.stats.quarantined_cores, 0,
                "zero-rate run quarantined cores ({})",
                p.stats.policy
            );
        }
    }
    if let Some(path) = trace {
        let tele = tele.expect("--trace enabled telemetry on the sweep");
        tele.save_jsonl(path).expect("write JSONL trace");
        println!(
            "wrote {path} ({} cores, {} quarantines)",
            tele.per_core.len(),
            tele.quarantines().len()
        );
    }
    println!(
        "done; {}",
        report::results_dir().join("fault_sweep.csv").display()
    );
}
