//! `mimo-exp` — the unified experiment CLI over declarative scenario specs.
//!
//! The primary entry point is `run <spec.toml>`: every experiment the
//! harness can perform is described by a checked-in spec under `specs/`,
//! and the per-figure subcommands (`fig06`, …) are thin aliases resolving
//! to compile-time copies of those same files — one code path, one config
//! surface, byte-identical CSVs either way.
//!
//! ```text
//! mimo-exp run <spec.toml> [FLAGS]     execute a scenario spec
//! mimo-exp validate <path>...          check specs without running them
//! mimo-exp schema                      print the spec key reference
//! mimo-exp [SUBCOMMAND] [FLAGS]        alias / suite / bench
//! ```
//!
//! With no subcommand the full suite runs. Grid cells fan out across
//! `--jobs` workers; output is bit-identical at any job count, so
//! `--jobs` only changes wall-clock.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use mimo_exp::experiments::ExpConfig;
use mimo_exp::par;
use mimo_exp::report::ResultsDir;
use mimo_exp::spec::{self, RunOverrides};
use mimo_exp::timing::TimingSink;

const USAGE: &str = "\
mimo-exp — reproduce the paper's evaluation from declarative scenario specs

USAGE:
    mimo-exp run <spec.toml> [FLAGS]     execute a scenario spec
    mimo-exp validate <path>...          check spec files (or directories)
    mimo-exp schema                      print the spec key reference
    mimo-exp [SUBCOMMAND] [FLAGS]

SUBCOMMANDS:
    all          run the complete suite (default)
    fig06        Figure 6 / Table V: weight-choice sensitivity
    fig07        Figure 7: model error vs state dimension
    fig08        Figure 8: convergence under uncertainty guardbands
    fig09        Figure 9: E×D minimization, 2 inputs
    fig10        Figure 10: E×D minimization, 3 inputs
    fig11        Figure 11: tracking-error scatter
    fig12        Figure 12: time-varying (QoE/battery) tracking
    tab-opt      §VIII-F text: E and E×D² reductions
    fleet-scale  fleet sizes × worker counts under one chip budget
    cluster-scale  chips × cores-per-chip under one datacenter budget,
                 sharded chip-parallel with shared-LLC contention
    fault-sweep  fault rate × arbitration policy on a 16-core fleet
    phase-step   spec-only scenario: stepped power/QoE reference schedule
    cluster-fault  spec-only scenario: mid-run chip fault on a cluster
    cluster-bank  spec-only scenario: banked cluster with a mid-run bank
                 eviction, pinned to the per-cell digest
    bench        time the LQG step and a 16-core fleet sweep on the
                 dynamic and static storage paths, plus banked vs
                 per-cell fleet/cluster stepping (64×64 cluster); writes
                 BENCH_controller.json and BENCH_fleet.json to the
                 results directory

    Every non-bench subcommand is an alias for `run` on the embedded copy
    of the matching specs/<name>.toml file.

FLAGS:
    --epochs N    epochs per tracking run (default: each spec's own count;
                  paper-scale 4000 for the figure aliases)
    --jobs N      worker threads for experiment grid cells (default: the
                  host's available parallelism, or the MIMO_JOBS env var;
                  N >= 1 — results are bit-identical at any job count)
    --out DIR     directory CSVs land in (default: nearest results/)
    --timing      record per-subcommand and per-cell wall-clock into
                  BENCH_harness.json in the results directory (for
                  cluster-scale this includes per-chip stepping time)
    --shards N    cluster specs only: pin the shard count; the CSV is
                  byte-identical at any value (CI diffs them)
    --trace PATH  fault-sweep only: write a JSONL epoch trace of the
                  sweep's most eventful run (per-core ring-buffer sinks)
    -h, --help    print this help
";

struct Cli {
    command: String,
    /// Positional arguments after the subcommand (`run` takes one spec
    /// path, `validate` one or more).
    paths: Vec<String>,
    epochs: Option<usize>,
    jobs: Option<usize>,
    out: Option<String>,
    timing: bool,
    shards: Option<usize>,
    trace: Option<String>,
}

/// Subcommands that resolve to an embedded spec, i.e. everything except
/// `run`/`validate`/`schema`/`all`/`bench`.
fn is_alias(cmd: &str) -> bool {
    spec::embedded::by_alias(cmd).is_some()
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        command: String::from("all"),
        paths: Vec::new(),
        epochs: None,
        jobs: None,
        out: None,
        timing: false,
        shards: None,
        trace: None,
    };
    let mut saw_command = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--epochs" => {
                let v = it.next().ok_or("--epochs needs a value")?;
                cli.epochs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--epochs needs a positive integer, got {v:?}"))?,
                );
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                cli.jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--jobs needs a positive integer, got {v:?}"))?,
                );
            }
            "--out" => {
                cli.out = Some(it.next().ok_or("--out needs a directory")?.clone());
            }
            "--timing" => cli.timing = true,
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("--shards needs a positive integer, got {v:?}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".into());
                }
                cli.shards = Some(n);
            }
            "--trace" => {
                cli.trace = Some(it.next().ok_or("--trace needs a path")?.clone());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}"));
            }
            cmd if !saw_command => {
                saw_command = true;
                cli.command = cmd.to_string();
            }
            path if matches!(cli.command.as_str(), "run" | "validate") => {
                cli.paths.push(path.to_string());
            }
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    let known = ["all", "run", "validate", "schema", "bench"];
    if !known.contains(&cli.command.as_str()) && !is_alias(&cli.command) {
        return Err(format!("unknown subcommand {:?}", cli.command));
    }
    match cli.command.as_str() {
        "run" if cli.paths.len() != 1 => {
            return Err("run takes exactly one spec path".into());
        }
        "validate" if cli.paths.is_empty() => {
            return Err("validate takes at least one spec file or directory".into());
        }
        _ => {}
    }
    let trace_ok = matches!(cli.command.as_str(), "fault-sweep" | "run");
    if cli.trace.is_some() && !trace_ok {
        return Err("--trace is only meaningful with fault-sweep (or run on its spec)".into());
    }
    let shards_ok = matches!(
        cli.command.as_str(),
        "cluster-scale" | "cluster-fault" | "cluster-bank" | "run"
    );
    if cli.shards.is_some() && !shards_ok {
        return Err(
            "--shards is only meaningful with cluster specs (cluster-scale, cluster-fault, or run)"
                .into(),
        );
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    // Spec-introspection subcommands need no runtime config.
    match cli.command.as_str() {
        "schema" => {
            print!("{}", spec::SCHEMA_TEXT);
            return ExitCode::SUCCESS;
        }
        "validate" => return run_validate(&cli.paths),
        _ => {}
    }

    let jobs = match par::resolve_jobs(cli.jobs) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = ExpConfig::full();
    cfg.jobs = jobs;
    cfg.results = match &cli.out {
        Some(dir) => ResultsDir::new(dir.clone()),
        None => ResultsDir::discover(),
    };
    if cli.timing {
        cfg.timing = TimingSink::enabled();
    }
    if let Some(n) = cli.epochs {
        cfg.tracking_epochs = n;
    }
    let overrides = RunOverrides {
        epochs: cli.epochs,
        shards: cli.shards,
        trace: cli.trace.clone(),
    };

    let start = Instant::now();
    let failures = match cli.command.as_str() {
        "all" => run_all(&cfg, cli.epochs),
        "bench" => {
            let r = cfg.timing.subcommand("bench", || run_bench(&cfg));
            collect_failure("bench", r)
        }
        "run" => {
            let path = PathBuf::from(&cli.paths[0]);
            match spec::load(&path) {
                Ok(s) => {
                    let name = s.name.clone();
                    let r = cfg
                        .timing
                        .subcommand(&name, || spec::run_spec(&cfg, &s, &overrides));
                    collect_failure(&name, r)
                }
                Err(msg) => vec![("run".to_string(), msg)],
            }
        }
        alias => {
            let r = cfg
                .timing
                .subcommand(alias, || run_alias(&cfg, alias, &overrides));
            collect_failure(alias, r)
        }
    };
    let wall_s = start.elapsed().as_secs_f64();

    let (hits, misses) = cfg.cache.stats();
    if hits + misses > 0 {
        println!("design cache: {hits} hits, {misses} misses");
    }
    if cfg.timing.is_enabled() {
        let doc = cfg
            .timing
            .render_json(cfg.jobs, cfg.tracking_epochs, wall_s, hits, misses);
        match cfg.results.write_text("BENCH_harness.json", &doc) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write BENCH_harness.json: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (name, msg) in &failures {
            eprintln!("error: {name} failed: {msg}");
        }
        ExitCode::FAILURE
    }
}

/// Resolves a subcommand alias to its embedded spec and runs it. The
/// embedded copies are pinned byte-identical to the `specs/` files by
/// test, so this is exactly `mimo-exp run specs/<name>.toml`.
fn run_alias(cfg: &ExpConfig, alias: &str, ov: &RunOverrides) -> Result<(), String> {
    let embedded = spec::embedded::by_alias(alias)
        .ok_or_else(|| format!("no embedded spec for alias {alias:?}"))?;
    let s = spec::parse_str(embedded.text)
        .map_err(|e| format!("embedded {} is invalid: {e}", embedded.path))?;
    spec::run_spec(cfg, &s, ov)
}

/// `mimo-exp validate <path>...`: parses, validates, and lowers every
/// named spec (recursing one level into directories for `*.toml`) without
/// running anything. Prints one line per spec; any failure exits non-zero.
fn run_validate(paths: &[String]) -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        let path = Path::new(p);
        if path.is_dir() {
            let mut in_dir: Vec<PathBuf> = match std::fs::read_dir(path) {
                Ok(entries) => entries
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "toml"))
                    .collect(),
                Err(e) => {
                    eprintln!("error: {}: cannot read directory: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            if in_dir.is_empty() {
                eprintln!("error: {}: no .toml specs found", path.display());
                return ExitCode::FAILURE;
            }
            in_dir.sort();
            files.extend(in_dir);
        } else {
            files.push(path.to_path_buf());
        }
    }
    let mut ok = true;
    for file in &files {
        let outcome = spec::load(file).and_then(|s| {
            spec::check(&s)
                .map(|()| s)
                .map_err(|e| spec::format_error(file, &e))
        });
        match outcome {
            Ok(s) => println!("{}: ok ({} {})", file.display(), s.scenario.kind(), s.name),
            Err(msg) => {
                ok = false;
                eprintln!("error: {msg}");
            }
        }
    }
    if ok {
        println!("{} spec(s) valid", files.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn collect_failure(name: &str, r: Result<(), String>) -> Vec<(String, String)> {
    match r {
        Ok(()) => Vec::new(),
        Err(msg) => vec![(name.to_string(), msg)],
    }
}

/// The complete evaluation suite: every embedded spec in the historical
/// figure order, then the spec-only scenarios. A failing step is
/// reported and the rest of the suite still runs, so one bad cell costs
/// one figure, not the whole evaluation.
fn run_all(cfg: &ExpConfig, epochs: Option<usize>) -> Vec<(String, String)> {
    let mut failures = Vec::new();
    let steps: &[(&str, &str)] = &[
        ("fig06", "Figure 6 — weight sensitivity"),
        ("fig07", "Figure 7 — model dimension"),
        ("fig08", "Figure 8 — uncertainty guardbands"),
        ("fig11", "Figure 11 — tracking multiple references"),
        ("fig12", "Figure 12 — time-varying tracking"),
        ("fig09", "Figure 9 — E×D, 2 inputs"),
        ("fig10", "Figure 10 — E×D, 3 inputs"),
        ("tab-opt", "§VIII-F — E and E×D²"),
        (
            "fleet-scale",
            "Fleet scaling — chip-budgeted many-core runtime",
        ),
        (
            "cluster-scale",
            "Cluster scaling — hierarchical multi-chip runtime",
        ),
        (
            "phase-step",
            "Scenario — stepped reference schedule (spec-only)",
        ),
        ("cluster-fault", "Scenario — mid-run chip fault (spec-only)"),
        (
            "cluster-bank",
            "Scenario — banked cluster, mid-run bank eviction (spec-only)",
        ),
    ];
    let ov = RunOverrides {
        epochs,
        shards: None,
        trace: None,
    };
    for (name, title) in steps {
        println!("### {title}");
        if let Err(msg) = cfg.timing.subcommand(name, || run_alias(cfg, name, &ov)) {
            eprintln!("error: {name} failed: {msg} (continuing)");
            failures.push((name.to_string(), msg));
        }
    }
    println!("done; CSVs in {}", cfg.results.path().display());
    failures
}

fn run_bench(cfg: &ExpConfig) -> Result<(), String> {
    let b = mimo_exp::bench::run()?;
    println!(
        "lqg step: {:.0} ns dynamic, {:.0} ns static ({:.2}x)",
        b.lqg_step_dynamic_ns,
        b.lqg_step_static_ns,
        b.step_speedup()
    );
    println!(
        "fleet 16c/50e: {:.2} ms dynamic, {:.2} ms static ({:.2}x)",
        b.fleet_epoch_dynamic_ms,
        b.fleet_epoch_static_ms,
        b.fleet_speedup()
    );
    let doc = mimo_exp::bench::render_json(&b);
    let path = cfg
        .results
        .write_text("BENCH_controller.json", &doc)
        .map_err(|e| format!("write BENCH_controller.json: {e}"))?;
    println!("wrote {}", path.display());

    let f = mimo_exp::bench::run_fleet()?;
    println!(
        "fleet 16c/50e: {:.2} ms per-cell, {:.2} ms banked ({:.2}x), {} host cpus",
        f.fleet_per_cell_ms,
        f.fleet_banked_ms,
        f.fleet_speedup(),
        f.host_cpus
    );
    println!(
        "cluster 64x64 (4096 governors): {:.0} us/epoch per-cell, {:.0} us/epoch banked ({:.2}x)",
        f.cluster_per_cell_epoch_us,
        f.cluster_banked_epoch_us,
        f.cluster_speedup()
    );
    let doc = mimo_exp::bench::render_fleet_json(&f);
    let path = cfg
        .results
        .write_text("BENCH_fleet.json", &doc)
        .map_err(|e| format!("write BENCH_fleet.json: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}
