//! Runs the complete evaluation suite (every figure and table).
use mimo_core::optimizer::Metric;
use mimo_exp::experiments::{self, ExpConfig};
use mimo_sim::InputSet;
fn main() {
    let cfg = ExpConfig::full();
    println!("### Figure 6 — weight sensitivity");
    experiments::fig06(&cfg).expect("fig06");
    println!("### Figure 7 — model dimension");
    experiments::fig07(&cfg).expect("fig07");
    println!("### Figure 8 — uncertainty guardbands");
    experiments::fig08(&cfg).expect("fig08");
    println!("### Figure 11 — tracking multiple references");
    experiments::fig11(&cfg).expect("fig11");
    println!("### Figure 12 — time-varying tracking");
    experiments::fig12(&cfg).expect("fig12");
    println!("### Figure 9 — E×D, 2 inputs");
    experiments::optimization_experiment(&cfg, InputSet::FreqCache, Metric::EnergyDelay)
        .expect("fig09");
    println!("### Figure 10 — E×D, 3 inputs");
    experiments::optimization_experiment(&cfg, InputSet::FreqCacheRob, Metric::EnergyDelay)
        .expect("fig10");
    println!("### §VIII-F — E and E×D²");
    experiments::optimization_experiment(&cfg, InputSet::FreqCache, Metric::Energy).expect("E");
    experiments::optimization_experiment(&cfg, InputSet::FreqCache, Metric::EnergyDelaySquared)
        .expect("ED2");
    println!("### Fleet scaling — chip-budgeted many-core runtime");
    experiments::fleet_scale(&cfg).expect("fleet_scale");
    println!("done; CSVs in results/");
}
