use mimo_exp::setup;
use mimo_linalg::Vector;
use mimo_sim::InputSet;

fn main() {
    for seed in [1u64, 2, 3, 5, 7, 11] {
        match setup::design_mimo(InputSet::FreqCache, seed) {
            Ok(v) => {
                let dc = v.model.dc_gain().unwrap();
                println!(
                    "2in seed {seed}: dc = [{:.3} {:.3}; {:.3} {:.3}] gb {:?} redesigns {}",
                    dc[(0, 0)],
                    dc[(0, 1)],
                    dc[(1, 0)],
                    dc[(1, 1)],
                    v.guardbands,
                    v.redesigns
                );
            }
            Err(e) => println!("2in seed {seed}: FAILED {e}"),
        }
    }
    for seed in [11u64, 2, 5] {
        match setup::design_mimo(InputSet::FreqCacheRob, seed) {
            Ok(v) => {
                let dc = v.model.dc_gain().unwrap();
                println!(
                    "3in seed {seed}: dc row0 [{:.3} {:.3} {:.3}] row1 [{:.3} {:.3} {:.3}]",
                    dc[(0, 0)],
                    dc[(0, 1)],
                    dc[(0, 2)],
                    dc[(1, 0)],
                    dc[(1, 1)],
                    dc[(1, 2)]
                );
            }
            Err(e) => println!("3in seed {seed}: FAILED {e}"),
        }
    }
    // behavior of seed 2 controller
    let v = setup::design_mimo(InputSet::FreqCache, 2).unwrap();
    let mut ctrl = v.controller;
    ctrl.set_reference(&Vector::from_slice(&[2.5, 2.0]));
    let mut plant = setup::plant("namd", InputSet::FreqCache, 3);
    let mut y = Vector::from_slice(&[1.0, 1.0]);
    for t in 0..600 {
        let u = ctrl.step(&y);
        y = mimo_sim::Plant::apply(&mut plant, &u);
        if t % 100 == 0 {
            println!(
                "t={t} u=[{:.2},{:.0}] y=[{:.2},{:.2}]",
                u[0], u[1], y[0], y[1]
            );
        }
    }
}
