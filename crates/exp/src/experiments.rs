//! One function per paper artifact (figure/table). The `fig*` binaries and
//! the integration tests call these; each returns structured results and
//! can print a report with CSV output.
//!
//! The per-figure grids — (workload, governor, configuration) cells — run
//! on the index-ordered [`par_map`] pool: each cell
//! owns its own seeded plant, seeds are derived from the cell index with
//! the same formulas the serial code used, and reduction/emission always
//! walks cells in index order, so every CSV is bit-identical at any
//! `--jobs` count (and to the historical serial output).

use std::time::Instant;

use mimo_core::design::DesignFlow;
use mimo_core::governor::{Governor, MimoGovernor};
use mimo_core::heuristic::{HeuristicOptimizer, HeuristicTracker};
use mimo_core::optimizer::{Metric, MAX_TRIES};
use mimo_core::weights::WeightSet;
use mimo_core::ControlError;
use mimo_linalg::Vector;
use mimo_sim::workload::{is_non_responsive, production_names};
use mimo_sim::InputSet;

use crate::cache::DesignCache;
use crate::par::par_map;
use crate::qoe::BatterySchedule;
use crate::report::{self, Comparison, ResultsDir};
use crate::runner::{
    run_optimization, run_schedule, run_self_directed, run_tracking, ScheduleTrace, TrackingStats,
};
use crate::timing::TimingSink;
use crate::{setup, TARGET_IPS, TARGET_POWER};

/// Experiment sizing knobs; `full()` reproduces the paper-scale runs,
/// `quick()` keeps integration tests fast.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Instruction budget per optimization run, billions.
    pub budget_g: f64,
    /// Epochs per tracking run.
    pub tracking_epochs: usize,
    /// Epochs for time-varying runs (Figure 12 uses 10 000).
    pub schedule_epochs: usize,
    /// Restrict to a subset of apps (`None` = the full production set).
    pub apps: Option<Vec<&'static str>>,
    /// Base RNG seed.
    pub seed: u64,
    /// Whether to print reports and write CSVs.
    pub emit: bool,
    /// Worker threads for grid cells (1 = serial; results are identical
    /// at any value).
    pub jobs: usize,
    /// Memoized design-flow products, shared across subcommands.
    pub cache: DesignCache,
    /// Where CSVs and other artifacts land.
    pub results: ResultsDir,
    /// Wall-clock recorder for `--timing` (disabled by default).
    pub timing: TimingSink,
}

impl ExpConfig {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        ExpConfig {
            budget_g: 2.0,
            tracking_epochs: 4000,
            schedule_epochs: 10_000,
            apps: None,
            seed: 2016,
            emit: true,
            jobs: 1,
            cache: DesignCache::new(),
            results: ResultsDir::discover(),
            timing: TimingSink::disabled(),
        }
    }

    /// Small configuration for tests.
    pub fn quick() -> Self {
        ExpConfig {
            apps: Some(vec!["astar", "milc", "mcf", "gamess", "dealII", "povray"]),
            budget_g: 1.2,
            tracking_epochs: 1200,
            schedule_epochs: 2000,
            emit: false,
            ..ExpConfig::full()
        }
    }

    fn app_list(&self) -> Vec<&'static str> {
        self.apps.clone().unwrap_or_else(production_names)
    }

    /// Fans `items` across the configured worker pool, timing each cell
    /// under its label; results (and timing records) come back in cell
    /// order.
    fn grid<T, R, F>(&self, labels: &[String], items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        debug_assert_eq!(labels.len(), items.len());
        let timed = par_map(self.jobs, items, |i, t| {
            let start = Instant::now();
            let r = f(i, t);
            (r, start.elapsed().as_secs_f64())
        });
        timed
            .into_iter()
            .enumerate()
            .map(|(i, (r, wall_s))| {
                self.timing.record_cell(&labels[i], wall_s);
                r
            })
            .collect()
    }
}

/// Attaches a grid-cell label (workload/architecture) to an error so one
/// failing cell reports *which* cell instead of aborting the sweep
/// anonymously.
fn cell_err(label: &str, e: impl std::fmt::Display) -> ControlError {
    ControlError::ValidationFailed {
        what: format!("cell {label}: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Figure 6 — weight-choice sensitivity (Table V)
// ---------------------------------------------------------------------------

/// One Figure 6 data point.
#[derive(Debug, Clone)]
pub struct Fig06Point {
    /// Weight-set label (Equal / Inputs / Power / Size).
    pub label: String,
    /// Epochs to steady state for frequency (None = did not converge).
    pub steady_freq: Option<usize>,
    /// Epochs to steady state for cache size.
    pub steady_cache: Option<usize>,
    /// Average IPS tracking error, percent.
    pub err_ips_pct: f64,
    /// Average power tracking error, percent.
    pub err_power_pct: f64,
}

/// Runs the Table V weight sets on `namd` tracking (2.5 BIPS, 2 W).
///
/// # Errors
///
/// Propagates design failures (weight sets that cannot even be synthesized
/// are reported as non-convergent instead).
pub fn fig06(cfg: &ExpConfig) -> mimo_core::Result<Vec<Fig06Point>> {
    let targets = Vector::from_slice(&[TARGET_IPS, TARGET_POWER]);
    let cells = WeightSet::table_v();
    let labels: Vec<String> = cells
        .iter()
        .map(|ws| format!("fig06/{}", ws.label))
        .collect();
    let points = cfg.grid(&labels, cells, |i, ws| -> mimo_core::Result<Fig06Point> {
        let label = ws.label.clone();
        // Figure 6 studies raw weight choices: design without the RSA loop
        // so bad choices show their true (possibly non-convergent) colors.
        // The sensitivity sweep uses a lower weight scale than the
        // production controller so that the four Table V points span the
        // sluggish-to-ripply spectrum the paper illustrates (only the
        // relative ordering of the sets is meaningful).
        let mut flow = DesignFlow::two_input().with_weights(ws);
        flow.input_weight_scale = 3e4;
        let mut training = setup::training_plants(InputSet::FreqCache, cfg.seed);
        match flow.run_multi(training.iter_mut()) {
            Ok(result) => {
                let mut gov = MimoGovernor::new(result.into_controller());
                let mut plant = setup::try_plant("namd", InputSet::FreqCache, cfg.seed + 40)
                    .map_err(|e| cell_err(&labels[i], e))?;
                // Convergence from initial conditions, within namd's first
                // program phase.
                let epochs = cfg.tracking_epochs.min(2400);
                let stats = run_tracking(&mut gov, &mut plant, &targets, epochs, false);
                Ok(Fig06Point {
                    label,
                    steady_freq: stats.steady_epoch[0],
                    steady_cache: stats.steady_epoch[1],
                    err_ips_pct: stats.avg_err_pct[0],
                    err_power_pct: stats.avg_err_pct[1],
                })
            }
            // A weight set that cannot even be synthesized is a finding
            // (non-convergent), not a harness failure.
            Err(_) => Ok(Fig06Point {
                label,
                steady_freq: None,
                steady_cache: None,
                err_ips_pct: f64::NAN,
                err_power_pct: f64::NAN,
            }),
        }
    });
    let points: Vec<Fig06Point> = points.into_iter().collect::<mimo_core::Result<_>>()?;
    if cfg.emit {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    fmt_steady(p.steady_freq),
                    fmt_steady(p.steady_cache),
                    report::fmt(p.err_ips_pct, 1),
                    report::fmt(p.err_power_pct, 1),
                ]
            })
            .collect();
        println!(
            "{}",
            report::ascii_table(
                &[
                    "weights",
                    "steady(freq)",
                    "steady(cache)",
                    "err IPS %",
                    "err P %"
                ],
                &rows
            )
        );
        let _ = cfg.results.write_csv(
            "fig06_weights.csv",
            &[
                "label",
                "steady_freq",
                "steady_cache",
                "err_ips_pct",
                "err_power_pct",
            ],
            &rows,
        );
    }
    Ok(points)
}

fn fmt_steady(s: Option<usize>) -> String {
    s.map_or("no-conv".to_string(), |e| e.to_string())
}

// ---------------------------------------------------------------------------
// Figure 7 — model error vs state dimension
// ---------------------------------------------------------------------------

/// One Figure 7 data point.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig07Point {
    /// State dimension of the realized model.
    pub dimension: usize,
    /// Validation error for IPS, percent.
    pub err_ips_pct: f64,
    /// Validation error for power, percent.
    pub err_power_pct: f64,
}

/// Sweeps the model dimension {2, 4, 6, 8} and measures validation error.
///
/// # Errors
///
/// Propagates identification failures.
pub fn fig07(cfg: &ExpConfig) -> mimo_core::Result<Vec<Fig07Point>> {
    // (na, feedthrough): dim = na·O (+ I if strictly proper).
    let sweep = [(1, true), (1, false), (2, false), (3, false)];
    let mut points = Vec::new();
    for (na, ft) in sweep {
        let mut flow = DesignFlow::two_input().with_arx_na(na);
        flow.direct_feedthrough = ft;
        let mut training = setup::training_plants(InputSet::FreqCache, cfg.seed);
        let result = flow.run_multi(training.iter_mut())?;
        let mut validation = setup::validation_plants(InputSet::FreqCache, cfg.seed);
        let errors = flow.measure_model_error(&result, validation.iter_mut())?;
        points.push(Fig07Point {
            dimension: result.model.state_dim(),
            err_ips_pct: errors[0] * 100.0,
            err_power_pct: errors[1] * 100.0,
        });
    }
    if cfg.emit {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.dimension.to_string(),
                    report::fmt(p.err_ips_pct, 1),
                    report::fmt(p.err_power_pct, 1),
                ]
            })
            .collect();
        println!(
            "{}",
            report::ascii_table(&["dimension", "max err IPS %", "max err P %"], &rows)
        );
        let _ = cfg.results.write_csv(
            "fig07_dimension.csv",
            &["dimension", "err_ips_pct", "err_power_pct"],
            &rows,
        );
        println!(
            "{}",
            report::comparison_table(
                "Figure 7",
                &[Comparison::new(
                    "dimension picked",
                    "4 (errors plateau after)",
                    &format!("{}", best_dimension(&points)),
                )]
            )
        );
    }
    Ok(points)
}

/// The smallest dimension within 5% of the best achievable error.
pub fn best_dimension(points: &[Fig07Point]) -> usize {
    let best = points
        .iter()
        .map(|p| p.err_ips_pct + p.err_power_pct)
        .fold(f64::INFINITY, f64::min);
    points
        .iter()
        .find(|p| p.err_ips_pct + p.err_power_pct <= 1.05 * best)
        .map_or(4, |p| p.dimension)
}

// ---------------------------------------------------------------------------
// Figure 8 — uncertainty guardband vs convergence time
// ---------------------------------------------------------------------------

/// One Figure 8 run (per guardband level).
#[derive(Debug, Clone)]
pub struct Fig08Point {
    /// "High" (50%/30%) or "Low" (30%/20%).
    pub label: String,
    /// Epochs to steady state for frequency, averaged over apps.
    pub steady_freq: f64,
    /// Epochs to steady state for cache, averaged over apps.
    pub steady_cache: f64,
}

/// Designs with the paper's High (50% IPS / 30% power) and Low (30%/20%)
/// guardbands and measures convergence time on responsive apps.
///
/// # Errors
///
/// Propagates design failures.
pub fn fig08(cfg: &ExpConfig) -> mimo_core::Result<Vec<Fig08Point>> {
    let targets = Vector::from_slice(&[TARGET_IPS, TARGET_POWER]);
    // §VIII-C's mechanism: betting on a smaller guardband lets the designer
    // reduce the input weights (a more aggressive controller), provided RSA
    // still passes at that guardband. The High design keeps the production
    // weights; the Low design quarters them.
    let apps = ["namd", "gamess", "cactusADM", "sphinx3"];
    let specs = [
        ("High Uncertainty", [0.5, 0.3], 1.0),
        ("Low Uncertainty", [0.3, 0.2], 4.0),
    ];

    // Stage 1: synthesize the two guardband designs (independent cells).
    let design_labels: Vec<String> = specs
        .iter()
        .map(|(label, _, _)| format!("fig08/design/{label}"))
        .collect();
    let designs = cfg.grid(&design_labels, specs.to_vec(), |i, (_, gb, weight_div)| {
        let mut flow = DesignFlow::two_input();
        flow.input_weight_scale /= weight_div;
        let mut training = setup::training_plants(InputSet::FreqCache, cfg.seed);
        let result = flow
            .run_multi(training.iter_mut())
            .map_err(|e| cell_err(&design_labels[i], e))?;
        // RSA must confirm the design is stable at its guardband.
        flow.rsa_redesign(&result, &gb)
            .map_err(|e| cell_err(&design_labels[i], e))
    });
    let designs: Vec<_> = designs.into_iter().collect::<mimo_core::Result<_>>()?;

    // Stage 2: every (design, app) tracking run is its own cell. Measure
    // within the first program phase (convergence from initial conditions,
    // as in the paper's figure); per-app seeds match the serial formula.
    let epochs = cfg.tracking_epochs.min(2200);
    let cells: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|d| (0..apps.len()).map(move |k| (d, k)))
        .collect();
    let labels: Vec<String> = cells
        .iter()
        .map(|&(d, k)| format!("fig08/{}/{}", specs[d].0, apps[k]))
        .collect();
    let runs = cfg.grid(&labels, cells, |i, (d, k)| {
        let mut gov = MimoGovernor::new(designs[d].controller.clone());
        let mut plant = setup::try_plant(apps[k], InputSet::FreqCache, cfg.seed + 60 + k as u64)
            .map_err(|e| cell_err(&labels[i], e))?;
        Ok(run_tracking(&mut gov, &mut plant, &targets, epochs, false))
    });
    let runs: Vec<TrackingStats> = runs.into_iter().collect::<mimo_core::Result<_>>()?;

    let mut points = Vec::new();
    for (d, run_block) in runs.chunks(apps.len()).enumerate() {
        let mut sum_f = 0.0;
        let mut sum_c = 0.0;
        let mut n = 0.0;
        for stats in run_block {
            if let (Some(f), Some(c)) = (stats.steady_epoch[0], stats.steady_epoch[1]) {
                sum_f += f as f64;
                sum_c += c as f64;
                n += 1.0;
            }
        }
        points.push(Fig08Point {
            label: specs[d].0.to_string(),
            steady_freq: if n > 0.0 { sum_f / n } else { f64::NAN },
            steady_cache: if n > 0.0 { sum_c / n } else { f64::NAN },
        });
    }
    if cfg.emit {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    report::fmt(p.steady_freq, 0),
                    report::fmt(p.steady_cache, 0),
                ]
            })
            .collect();
        println!(
            "{}",
            report::ascii_table(
                &["design", "steady(freq) epochs", "steady(cache) epochs"],
                &rows
            )
        );
        let _ = cfg.results.write_csv(
            "fig08_guardband.csv",
            &["label", "steady_freq", "steady_cache"],
            &rows,
        );
    }
    Ok(points)
}

// ---------------------------------------------------------------------------
// Figures 9/10 + §VIII-F table — optimization experiments
// ---------------------------------------------------------------------------

/// Per-app normalized E·D^(k−1) for each architecture.
#[derive(Debug, Clone)]
pub struct OptRow {
    /// Application name.
    pub app: &'static str,
    /// MIMO result normalized to Baseline.
    pub mimo: f64,
    /// Heuristic result normalized to Baseline.
    pub heuristic: f64,
    /// Decoupled result normalized to Baseline (`None` for 3-input runs).
    pub decoupled: Option<f64>,
}

/// Full optimization-experiment output.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Per-app rows.
    pub rows: Vec<OptRow>,
    /// Geometric-mean-free simple averages across apps.
    pub avg_mimo: f64,
    /// See `avg_mimo`.
    pub avg_heuristic: f64,
    /// See `avg_mimo`.
    pub avg_decoupled: Option<f64>,
}

/// Runs the E·D^(k−1) optimization comparison for an input set (Figure 9
/// with 2 inputs + `EnergyDelay`, Figure 10 with 3 inputs, the §VIII-F
/// table with `Energy`/`EnergyDelaySquared`).
///
/// # Errors
///
/// Propagates design failures.
pub fn optimization_experiment(
    cfg: &ExpConfig,
    input_set: InputSet,
    metric: Metric,
) -> mimo_core::Result<OptResult> {
    let with_decoupled = input_set == InputSet::FreqCache;
    // All four architecture designs come from the shared cache: every
    // figure/table that deploys the same (input_set, seed) design reuses
    // one synthesis instead of re-running excitation + DARE.
    let baseline_cfg = cfg.cache.baseline_config(input_set, metric, cfg.seed);
    let mimo = cfg.cache.design_mimo(input_set, cfg.seed)?;
    let ranking = cfg.cache.heuristic_ranking(input_set, cfg.seed);
    let decoupled = if with_decoupled {
        Some(cfg.cache.decoupled_governor(cfg.seed)?)
    } else {
        None
    };
    let grids: Vec<Vec<f64>> = input_set
        .grids()
        .iter()
        .map(|g| g.values().to_vec())
        .collect();

    // One grid cell per (app, architecture); each owns a fresh plant with
    // the serial code's seed formula, so the normalized numbers are
    // identical at any job count.
    let archs: &[&str] = if with_decoupled {
        &["baseline", "mimo", "heuristic", "decoupled"]
    } else {
        &["baseline", "mimo", "heuristic"]
    };
    let apps = cfg.app_list();
    let cells: Vec<(usize, usize)> = (0..apps.len())
        .flat_map(|k| (0..archs.len()).map(move |a| (k, a)))
        .collect();
    let labels: Vec<String> = cells
        .iter()
        .map(|&(k, a)| {
            format!(
                "opt_{}in_k{}/{}/{}",
                input_set.len(),
                metric.exponent(),
                apps[k],
                archs[a]
            )
        })
        .collect();
    let products = cfg.grid(&labels, cells, |i, (k, a)| -> mimo_core::Result<f64> {
        let seed = cfg.seed + 1000 + k as u64;
        let mut plant =
            setup::try_plant(apps[k], input_set, seed).map_err(|e| cell_err(&labels[i], e))?;
        let run = match archs[a] {
            "baseline" => {
                let mut gov = mimo_core::governor::FixedGovernor::new(Vector::from_slice(
                    &baseline_cfg.to_actuation(input_set),
                ));
                run_self_directed(&mut gov, &mut plant, metric, cfg.budget_g)
            }
            "mimo" => {
                let mut gov = MimoGovernor::new(mimo.controller.clone());
                run_optimization(&mut gov, &mut plant, metric, cfg.budget_g)
            }
            "heuristic" => {
                let mut gov =
                    HeuristicOptimizer::new(grids.clone(), ranking.clone(), metric, MAX_TRIES);
                run_self_directed(&mut gov, &mut plant, metric, cfg.budget_g)
            }
            _ => {
                let mut gov = decoupled
                    .clone()
                    .expect("decoupled arch only when designed");
                run_optimization(&mut gov, &mut plant, metric, cfg.budget_g)
            }
        };
        Ok(run.ed_product)
    });
    let products: Vec<f64> = products.into_iter().collect::<mimo_core::Result<_>>()?;

    let mut rows = Vec::new();
    for (k, app) in apps.into_iter().enumerate() {
        let cell = |a: usize| products[k * archs.len() + a];
        let base = cell(0);
        rows.push(OptRow {
            app,
            mimo: cell(1) / base,
            heuristic: cell(2) / base,
            decoupled: with_decoupled.then(|| cell(3) / base),
        });
    }

    let n = rows.len() as f64;
    let avg_mimo = rows.iter().map(|r| r.mimo).sum::<f64>() / n;
    let avg_heuristic = rows.iter().map(|r| r.heuristic).sum::<f64>() / n;
    let avg_decoupled =
        with_decoupled.then(|| rows.iter().filter_map(|r| r.decoupled).sum::<f64>() / n);

    let result = OptResult {
        rows,
        avg_mimo,
        avg_heuristic,
        avg_decoupled,
    };
    if cfg.emit {
        emit_opt(cfg, &result, input_set, metric);
    }
    Ok(result)
}

fn emit_opt(cfg: &ExpConfig, result: &OptResult, input_set: InputSet, metric: Metric) {
    let k = metric.exponent();
    let title = format!(
        "E×D^{} normalized to Baseline ({} inputs)",
        k - 1,
        input_set.len()
    );
    let mut rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                report::fmt(r.mimo, 3),
                report::fmt(r.heuristic, 3),
                r.decoupled.map_or("-".into(), |d| report::fmt(d, 3)),
            ]
        })
        .collect();
    rows.push(vec![
        "AVG".into(),
        report::fmt(result.avg_mimo, 3),
        report::fmt(result.avg_heuristic, 3),
        result
            .avg_decoupled
            .map_or("-".into(), |d| report::fmt(d, 3)),
    ]);
    println!("\n== {title} ==");
    println!(
        "{}",
        report::ascii_table(&["app", "MIMO", "Heuristic", "Decoupled"], &rows)
    );
    let name = format!("opt_{}in_k{}.csv", input_set.len(), k);
    let _ = cfg
        .results
        .write_csv(&name, &["app", "mimo", "heuristic", "decoupled"], &rows);
}

// ---------------------------------------------------------------------------
// Figure 11 — tracking multiple references
// ---------------------------------------------------------------------------

/// Per-app tracking errors for one architecture.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Application name.
    pub app: &'static str,
    /// Whether the app belongs to the paper's non-responsive set.
    pub non_responsive: bool,
    /// Average IPS error, percent — per architecture (MIMO, Heuristic,
    /// Decoupled).
    pub err_ips: [f64; 3],
    /// Average power error, percent — same order.
    pub err_power: [f64; 3],
}

/// Figure 11 output with per-class averages.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// Per-app rows.
    pub rows: Vec<Fig11Row>,
    /// Average (IPS, power) errors over responsive apps, per architecture.
    pub responsive_avg: [(f64, f64); 3],
    /// Same for non-responsive apps.
    pub non_responsive_avg: [(f64, f64); 3],
}

/// Runs the §VIII-D tracking comparison across the production set.
///
/// # Errors
///
/// Propagates design failures.
pub fn fig11(cfg: &ExpConfig) -> mimo_core::Result<Fig11Result> {
    let targets = Vector::from_slice(&[TARGET_IPS, TARGET_POWER]);
    let mimo = cfg.cache.design_mimo(InputSet::FreqCache, cfg.seed)?;
    let ranking = cfg.cache.heuristic_ranking(InputSet::FreqCache, cfg.seed);
    let decoupled = cfg.cache.decoupled_governor(cfg.seed)?;
    let grids: Vec<Vec<f64>> = InputSet::FreqCache
        .grids()
        .iter()
        .map(|g| g.values().to_vec())
        .collect();

    // One grid cell per (app, architecture); arch index 0/1/2 = MIMO /
    // Heuristic / Decoupled, as in the row arrays.
    const ARCHS: [&str; 3] = ["mimo", "heuristic", "decoupled"];
    let apps = cfg.app_list();
    let cells: Vec<(usize, usize)> = (0..apps.len())
        .flat_map(|k| (0..ARCHS.len()).map(move |a| (k, a)))
        .collect();
    let labels: Vec<String> = cells
        .iter()
        .map(|&(k, a)| format!("fig11/{}/{}", apps[k], ARCHS[a]))
        .collect();
    let errs = cfg.grid(
        &labels,
        cells,
        |i, (k, a)| -> mimo_core::Result<(f64, f64)> {
            let seed = cfg.seed + 2000 + k as u64;
            let mut plant = setup::try_plant(apps[k], InputSet::FreqCache, seed)
                .map_err(|e| cell_err(&labels[i], e))?;
            let mut mimo_gov;
            let mut heur_gov;
            let mut dec_gov;
            let gov: &mut dyn Governor = match a {
                0 => {
                    mimo_gov = MimoGovernor::new(mimo.controller.clone());
                    &mut mimo_gov
                }
                1 => {
                    heur_gov =
                        HeuristicTracker::new(grids.clone(), ranking.clone(), targets.clone());
                    &mut heur_gov
                }
                _ => {
                    dec_gov = decoupled.clone();
                    &mut dec_gov
                }
            };
            let stats: TrackingStats =
                run_tracking(gov, &mut plant, &targets, cfg.tracking_epochs, false);
            Ok((stats.avg_err_pct[0], stats.avg_err_pct[1]))
        },
    );
    let errs: Vec<(f64, f64)> = errs.into_iter().collect::<mimo_core::Result<_>>()?;

    let mut rows = Vec::new();
    for (k, app) in apps.into_iter().enumerate() {
        let mut err_ips = [0.0; 3];
        let mut err_power = [0.0; 3];
        for a in 0..ARCHS.len() {
            let (ips, power) = errs[k * ARCHS.len() + a];
            err_ips[a] = ips;
            err_power[a] = power;
        }
        rows.push(Fig11Row {
            app,
            non_responsive: is_non_responsive(app),
            err_ips,
            err_power,
        });
    }

    let class_avg = |non_resp: bool| -> [(f64, f64); 3] {
        let class: Vec<&Fig11Row> = rows
            .iter()
            .filter(|r| r.non_responsive == non_resp)
            .collect();
        let n = class.len().max(1) as f64;
        let mut out = [(0.0, 0.0); 3];
        for (a, slot) in out.iter_mut().enumerate() {
            slot.0 = class.iter().map(|r| r.err_ips[a]).sum::<f64>() / n;
            slot.1 = class.iter().map(|r| r.err_power[a]).sum::<f64>() / n;
        }
        out
    };
    let result = Fig11Result {
        responsive_avg: class_avg(false),
        non_responsive_avg: class_avg(true),
        rows,
    };
    if cfg.emit {
        let table_rows: Vec<Vec<String>> = result
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.app.to_string(),
                    if r.non_responsive { "non-resp" } else { "resp" }.into(),
                    report::fmt(r.err_ips[0], 1),
                    report::fmt(r.err_power[0], 1),
                    report::fmt(r.err_ips[1], 1),
                    report::fmt(r.err_power[1], 1),
                    report::fmt(r.err_ips[2], 1),
                    report::fmt(r.err_power[2], 1),
                ]
            })
            .collect();
        println!(
            "{}",
            report::ascii_table(
                &[
                    "app",
                    "class",
                    "MIMO ips%",
                    "MIMO p%",
                    "Heur ips%",
                    "Heur p%",
                    "Dec ips%",
                    "Dec p%"
                ],
                &table_rows
            )
        );
        let _ = cfg.results.write_csv(
            "fig11_tracking.csv",
            &[
                "app", "class", "mimo_ips", "mimo_p", "heur_ips", "heur_p", "dec_ips", "dec_p",
            ],
            &table_rows,
        );
        println!(
            "{}",
            report::comparison_table(
                "Figure 11(a) — responsive avg IPS error",
                &[
                    Comparison::new("MIMO", "7%", &report::fmt(result.responsive_avg[0].0, 1)),
                    Comparison::new(
                        "Heuristic",
                        "13%",
                        &report::fmt(result.responsive_avg[1].0, 1)
                    ),
                    Comparison::new(
                        "Decoupled",
                        "24%",
                        &report::fmt(result.responsive_avg[2].0, 1)
                    ),
                ]
            )
        );
    }
    Ok(result)
}

// ---------------------------------------------------------------------------
// Figure 12 — time-varying tracking
// ---------------------------------------------------------------------------

/// Per-architecture trace of a time-varying run on one app.
#[derive(Debug, Clone)]
pub struct Fig12Run {
    /// Application name.
    pub app: &'static str,
    /// Architecture name.
    pub arch: &'static str,
    /// Full trace (outputs + references).
    pub trace: ScheduleTrace,
}

/// Runs the battery/QoE time-varying tracking of §VIII-E on `astar` and
/// `milc`.
///
/// # Errors
///
/// Propagates design failures.
pub fn fig12(cfg: &ExpConfig) -> mimo_core::Result<Vec<Fig12Run>> {
    let schedule = BatterySchedule::paper_default().schedule(cfg.schedule_epochs);
    let mimo = cfg.cache.design_mimo(InputSet::FreqCache, cfg.seed)?;
    let ranking = cfg.cache.heuristic_ranking(InputSet::FreqCache, cfg.seed);
    let decoupled = cfg.cache.decoupled_governor(cfg.seed)?;
    let grids: Vec<Vec<f64>> = InputSet::FreqCache
        .grids()
        .iter()
        .map(|g| g.values().to_vec())
        .collect();
    let first_targets = schedule[0].targets.clone();

    // One grid cell per (app, architecture).
    const APPS: [&str; 2] = ["astar", "milc"];
    const ARCHS: [&str; 3] = ["MIMO", "Heuristic", "Decoupled"];
    let cells: Vec<(usize, &'static str)> = (0..APPS.len())
        .flat_map(|k| ARCHS.iter().map(move |&arch| (k, arch)))
        .collect();
    let labels: Vec<String> = cells
        .iter()
        .map(|&(k, arch)| format!("fig12/{}/{arch}", APPS[k]))
        .collect();
    let runs = cfg.grid(
        &labels,
        cells,
        |i, (k, arch)| -> mimo_core::Result<Fig12Run> {
            let app = APPS[k];
            let mut plant = setup::try_plant(app, InputSet::FreqCache, cfg.seed + 3000 + k as u64)
                .map_err(|e| cell_err(&labels[i], e))?;
            let trace = match arch {
                "MIMO" => {
                    let mut gov = MimoGovernor::new(mimo.controller.clone());
                    run_schedule(&mut gov, &mut plant, &schedule, cfg.schedule_epochs)
                }
                "Heuristic" => {
                    let mut gov = HeuristicTracker::new(
                        grids.clone(),
                        ranking.clone(),
                        first_targets.clone(),
                    );
                    run_schedule(&mut gov, &mut plant, &schedule, cfg.schedule_epochs)
                }
                _ => {
                    let mut gov = decoupled.clone();
                    run_schedule(&mut gov, &mut plant, &schedule, cfg.schedule_epochs)
                }
            };
            Ok(Fig12Run { app, arch, trace })
        },
    );
    let runs: Vec<Fig12Run> = runs.into_iter().collect::<mimo_core::Result<_>>()?;
    if cfg.emit {
        // CSV: one decimated trace per app (epoch, ref, mimo, heur, dec).
        for app in ["astar", "milc"] {
            let per_arch: Vec<&Fig12Run> = runs.iter().filter(|r| r.app == app).collect();
            let len = per_arch[0].trace.outputs.len();
            let stride = (len / 500).max(1);
            let mut rows = Vec::new();
            for t in (0..len).step_by(stride) {
                rows.push(vec![
                    t.to_string(),
                    report::fmt(per_arch[0].trace.references[t][0], 3),
                    report::fmt(per_arch[0].trace.outputs[t][0], 3),
                    report::fmt(per_arch[1].trace.outputs[t][0], 3),
                    report::fmt(per_arch[2].trace.outputs[t][0], 3),
                ]);
            }
            let _ = cfg.results.write_csv(
                &format!("fig12_{app}.csv"),
                &["epoch", "ref_ips", "mimo_ips", "heur_ips", "dec_ips"],
                &rows,
            );
        }
        let mut cmp = Vec::new();
        for r in &runs {
            cmp.push(Comparison::new(
                &format!("{} on {}: avg |IPS err|", r.arch, r.app),
                "MIMO tracks closest",
                &format!("{}%", report::fmt(r.trace.ips_tracking_error_pct(), 1)),
            ));
        }
        println!("{}", report::comparison_table("Figure 12", &cmp));
    }
    Ok(runs)
}

// ---------------------------------------------------------------------------
// Fleet scaling — many-core runtime under a chip power budget
// ---------------------------------------------------------------------------

/// One fleet-scaling data point: a fleet size × worker count combination.
#[derive(Debug, Clone)]
pub struct FleetScalePoint {
    /// Fleet statistics for the run.
    pub stats: mimo_fleet::FleetStats,
    /// Digest of the deterministic fields (identical across worker counts
    /// for the same fleet size and seed).
    pub digest: u64,
}

/// Sweeps fleet sizes N ∈ {1, 4, 16, 64} at one and several worker
/// threads, all cores running clones of a single synthesized two-input
/// MIMO controller under a proportional chip-power arbiter.
///
/// Every (N, seed) pair must produce bit-identical deterministic stats at
/// every worker count; the returned points preserve the sweep order
/// (workers-inner) so callers can verify pairwise digests.
///
/// # Errors
///
/// Propagates controller-design failures and fleet configuration/run
/// failures, naming the failing `(n_cores, workers)` cell.
pub fn fleet_scale(cfg: &ExpConfig) -> mimo_core::Result<Vec<FleetScalePoint>> {
    let design = cfg.cache.design_mimo(InputSet::FreqCache, cfg.seed)?;
    let epochs = cfg.tracking_epochs.min(1000);
    let multi = std::thread::available_parallelism().map_or(2, |p| p.get().max(2));
    let worker_counts = [1usize, multi];

    // The fleet runner drives its own worker pool, so this sweep stays
    // serial at the harness level rather than oversubscribing the host.
    let mut points = Vec::new();
    for &n in &[1usize, 4, 16, 64] {
        for &w in &worker_counts {
            // Never ask for more workers than cores: validate() rejects
            // explicit over-subscription instead of clamping now.
            let label = format!("fleet-scale/n{n}/w{w}");
            let fleet_cfg = mimo_fleet::FleetConfig::new(n)
                .workers(w.min(n))
                .epochs(epochs)
                .seed(cfg.seed);
            let stats =
                mimo_fleet::FleetRunner::with_shared_controller(fleet_cfg, &design.controller)
                    .and_then(mimo_fleet::FleetRunner::run)
                    .map_err(|e| cell_err(&label, e))?;
            let digest = stats.digest();
            points.push(FleetScalePoint { stats, digest });
        }
    }

    if cfg.emit {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                let s = &p.stats;
                vec![
                    s.n_cores.to_string(),
                    s.workers.to_string(),
                    s.epochs.to_string(),
                    s.policy.clone(),
                    report::fmt(s.agg_ips_err_pct, 2),
                    report::fmt(s.agg_power_err_pct, 2),
                    report::fmt(s.avg_chip_power_w, 3),
                    report::fmt(s.peak_chip_power_w, 3),
                    report::fmt(s.cap_violation_pct, 2),
                    format!("{:016x}", p.digest),
                ]
            })
            .collect();
        // No wall-clock columns in the CSV: results files must be
        // bit-identical across runs and job counts (CI diffs them), so
        // throughput goes to stdout and BENCH_harness.json instead.
        let path = cfg.results.write_csv(
            "fleet_scale.csv",
            &[
                "n_cores",
                "workers",
                "epochs",
                "policy",
                "ips_err_pct",
                "power_err_pct",
                "avg_chip_w",
                "peak_chip_w",
                "cap_violation_pct",
                "digest",
            ],
            &rows,
        );
        if let Ok(p) = path {
            println!("wrote {}", p.display());
        }
        let mut cmp = Vec::new();
        for pair in points.chunks(worker_counts.len()) {
            let a = &pair[0].stats;
            let all_match = pair.iter().all(|p| p.digest == pair[0].digest);
            cmp.push(Comparison::new(
                &format!("N={} deterministic across workers", a.n_cores),
                "bit-identical",
                if all_match {
                    "bit-identical"
                } else {
                    "MISMATCH"
                },
            ));
            let best = pair
                .iter()
                .map(|p| p.stats.epochs_per_sec)
                .fold(0.0f64, f64::max);
            cmp.push(Comparison::new(
                &format!("N={} throughput (best)", a.n_cores),
                "scales with workers on multicore hosts",
                &format!("{} epochs/s", report::fmt(best, 0)),
            ));
        }
        println!("{}", report::comparison_table("Fleet scaling", &cmp));
    }
    Ok(points)
}

// ---------------------------------------------------------------------------
// Cluster scaling — hierarchical multi-chip fleet under a datacenter budget
// ---------------------------------------------------------------------------

/// One cluster-scaling data point: a chips × cores-per-chip grid cell,
/// run at one or more shard counts.
#[derive(Debug, Clone)]
pub struct ClusterScalePoint {
    /// Cluster statistics from the first shard count run (every
    /// deterministic field is shard-invariant).
    pub stats: mimo_fleet::ClusterStats,
    /// `(shard count, digest)` for every run of this cell; all digests
    /// must match.
    pub digests: Vec<(usize, u64)>,
}

/// Sweeps cluster shapes (chips × cores per chip) up to 256 total cores,
/// every core running a clone of one synthesized MIMO controller, each
/// chip under its own arbiter and shared-LLC contention model, and the
/// cluster arbiter re-dividing the datacenter cap every exchange window.
///
/// With `shards = None` each shape runs at shard counts {1, 2, 4, 8}
/// (capped at the chip count) and all runs of a shape must produce
/// bit-identical digests; `Some(s)` pins a single shard count — the CSV
/// is byte-identical either way, which is what the CI determinism job
/// diffs.
///
/// # Errors
///
/// Propagates controller-design failures and cluster configuration/run
/// failures, naming the failing `(chips, cores, shards)` cell.
pub fn cluster_scale(
    cfg: &ExpConfig,
    shards: Option<usize>,
) -> mimo_core::Result<Vec<ClusterScalePoint>> {
    use mimo_sim::llc::LlcConfig;

    let design = cfg.cache.design_mimo(InputSet::FreqCache, cfg.seed)?;
    let epochs = cfg.tracking_epochs.min(400);
    // 16, 64, and 256 total cores.
    let grid = [(4usize, 4usize), (4, 16), (16, 16)];

    // The cluster runner drives its own shard threads, so the sweep stays
    // serial at the harness level (same reasoning as fleet_scale).
    let mut points = Vec::new();
    for &(chips, cores) in &grid {
        let shard_counts: Vec<usize> = match shards {
            Some(s) => vec![s.clamp(1, chips)],
            None => {
                let mut v: Vec<usize> = [1usize, 2, 4, 8].iter().map(|&s| s.min(chips)).collect();
                v.dedup();
                v
            }
        };
        let mut first: Option<mimo_fleet::ClusterStats> = None;
        let mut digests = Vec::with_capacity(shard_counts.len());
        for &s in &shard_counts {
            let label = format!("cluster-scale/c{chips}x{cores}/s{s}");
            let ccfg = mimo_fleet::ClusterConfig::new(chips, cores)
                .epochs(epochs)
                .shards(s)
                // A mildly starved way budget (two-thirds of the roomy
                // default), so contention coupling is actually exercised.
                .llc_contention(LlcConfig::for_cores(cores).total_ways(4 * cores))
                .seed(cfg.seed);
            let started = Instant::now();
            let stats = mimo_fleet::ClusterRunner::with_shared_controller(ccfg, &design.controller)
                .and_then(mimo_fleet::ClusterRunner::run)
                .map_err(|e| cell_err(&label, e))?;
            cfg.timing
                .record_cell(&label, started.elapsed().as_secs_f64());
            // Per-chip stepping wall-clock (rendezvous waits excluded) —
            // recorded under --timing, never written to the CSV.
            if cfg.timing.is_enabled() {
                for (i, chip) in stats.per_chip.iter().enumerate() {
                    cfg.timing
                        .record_cell(&format!("{label}/chip{i}"), chip.wall_s);
                }
            }
            digests.push((s, stats.digest()));
            if first.is_none() {
                first = Some(stats);
            }
        }
        points.push(ClusterScalePoint {
            stats: first.expect("at least one shard count per cell"),
            digests,
        });
    }

    if cfg.emit {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                let s = &p.stats;
                vec![
                    s.n_chips.to_string(),
                    (s.total_cores / s.n_chips.max(1)).to_string(),
                    s.total_cores.to_string(),
                    s.epochs.to_string(),
                    s.exchange_period.to_string(),
                    s.exchanges.to_string(),
                    s.rebudget_moves.to_string(),
                    report::fmt(s.agg_ips_err_pct, 2),
                    report::fmt(s.agg_power_err_pct, 2),
                    report::fmt(s.avg_cluster_power_w, 3),
                    report::fmt(s.peak_window_power_w, 3),
                    report::fmt(s.cluster_cap_w, 3),
                    format!("{:016x}", p.digests[0].1),
                ]
            })
            .collect();
        // No shards or wall-clock columns: the file must be byte-identical
        // no matter which shard count produced it (CI diffs --shards 1/2/4
        // outputs directly); per-chip wall goes to BENCH_harness.json.
        let path = cfg.results.write_csv(
            "cluster_scale.csv",
            &[
                "n_chips",
                "cores_per_chip",
                "total_cores",
                "epochs",
                "exchange_period",
                "exchanges",
                "rebudget_moves",
                "ips_err_pct",
                "power_err_pct",
                "avg_cluster_w",
                "peak_window_w",
                "cluster_cap_w",
                "digest",
            ],
            &rows,
        );
        if let Ok(p) = path {
            println!("wrote {}", p.display());
        }
        let mut cmp = Vec::new();
        for p in &points {
            let s = &p.stats;
            let all_match = p.digests.iter().all(|&(_, d)| d == p.digests[0].1);
            cmp.push(Comparison::new(
                &format!(
                    "{}×{} ({} cores) deterministic across shards",
                    s.n_chips,
                    s.total_cores / s.n_chips.max(1),
                    s.total_cores
                ),
                "bit-identical",
                if all_match {
                    "bit-identical"
                } else {
                    "MISMATCH"
                },
            ));
            cmp.push(Comparison::new(
                &format!(
                    "{}×{} budget motion",
                    s.n_chips,
                    s.total_cores / s.n_chips.max(1)
                ),
                "cluster arbiter moves budget between chips",
                &format!(
                    "{} of {} exchanges moved caps",
                    s.rebudget_moves, s.exchanges
                ),
            ));
        }
        println!("{}", report::comparison_table("Cluster scaling", &cmp));
    }
    Ok(points)
}

// ---------------------------------------------------------------------------
// Fault sweep — graceful degradation under injected faults
// ---------------------------------------------------------------------------

/// One fault-sweep data point: a transient fault rate × arbitration policy
/// combination on a 16-core fleet.
#[derive(Debug, Clone)]
pub struct FaultSweepPoint {
    /// Per-epoch transient fault probability injected on every core.
    pub fault_rate: f64,
    /// Fleet statistics for the run (includes quarantine bookkeeping).
    pub stats: mimo_fleet::FleetStats,
}

/// Sweeps transient fault rates × arbitration policies on a 16-core MIMO
/// fleet and reports how tracking error, quarantine counts, and throughput
/// degrade as the fault process intensifies.
///
/// The zero-rate column doubles as a regression anchor: it must quarantine
/// nothing and fault no epochs, because a zero rate leaves the fault
/// injector completely transparent.
///
/// # Errors
///
/// Propagates controller-design failures and fleet configuration/run
/// failures, naming the failing `(rate, policy)` cell.
pub fn fault_sweep(cfg: &ExpConfig) -> mimo_core::Result<Vec<FaultSweepPoint>> {
    fault_sweep_traced(cfg, None).map(|(points, _)| points)
}

/// Like [`fault_sweep`], but when `telemetry` is provided every run carries
/// per-core sinks and the telemetry of the sweep's final run — the highest
/// fault rate under the last policy, the most eventful configuration — is
/// returned for export (e.g. the `mimo-exp fault-sweep --trace` flag).
///
/// # Errors
///
/// Same conditions as [`fault_sweep`].
pub fn fault_sweep_traced(
    cfg: &ExpConfig,
    telemetry: Option<mimo_core::telemetry::TelemetryConfig>,
) -> mimo_core::Result<(Vec<FaultSweepPoint>, Option<mimo_fleet::FleetTelemetry>)> {
    use mimo_fleet::ArbitrationPolicy;

    let design = cfg.cache.design_mimo(InputSet::FreqCache, cfg.seed)?;
    let epochs = cfg.tracking_epochs.min(600);
    let n = 16;
    let rates = [0.0, 0.002, 0.01, 0.05];
    let policies = [
        ArbitrationPolicy::Uniform,
        ArbitrationPolicy::Proportional,
        ArbitrationPolicy::PriorityWeighted,
    ];

    let mut points = Vec::new();
    let mut last_telemetry = None;
    for &rate in &rates {
        for &policy in &policies {
            let mut fleet_cfg = mimo_fleet::FleetConfig::new(n)
                .workers(0)
                .epochs(epochs)
                .policy(policy)
                .seed(cfg.seed)
                .fault_rate(rate);
            if let Some(t) = &telemetry {
                fleet_cfg = fleet_cfg.observer(t.clone());
            }
            let label = format!("fault-sweep/r{rate}/{policy:?}");
            let (stats, tele) =
                mimo_fleet::FleetRunner::with_shared_controller(fleet_cfg, &design.controller)
                    .and_then(mimo_fleet::FleetRunner::run_traced)
                    .map_err(|e| cell_err(&label, e))?;
            if tele.is_enabled() {
                last_telemetry = Some(tele);
            }
            points.push(FaultSweepPoint {
                fault_rate: rate,
                stats,
            });
        }
    }

    if cfg.emit {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                let s = &p.stats;
                vec![
                    report::fmt(p.fault_rate, 4),
                    s.policy.clone(),
                    s.epochs.to_string(),
                    report::fmt(s.agg_ips_err_pct, 2),
                    report::fmt(s.agg_power_err_pct, 2),
                    report::fmt(s.avg_chip_power_w, 3),
                    report::fmt(s.cap_violation_pct, 2),
                    s.fault_epochs.to_string(),
                    s.quarantined_cores.to_string(),
                    format!("{:016x}", s.digest()),
                ]
            })
            .collect();
        // Like fleet_scale.csv: no wall-clock column, so the file is
        // byte-stable for the CI determinism diff.
        let path = cfg.results.write_csv(
            "fault_sweep.csv",
            &[
                "fault_rate",
                "policy",
                "epochs",
                "ips_err_pct",
                "power_err_pct",
                "avg_chip_w",
                "cap_violation_pct",
                "fault_epochs",
                "quarantined_cores",
                "digest",
            ],
            &rows,
        );
        if let Ok(p) = path {
            println!("wrote {}", p.display());
        }
        let mut cmp = Vec::new();
        for p in &points {
            let s = &p.stats;
            cmp.push(Comparison::new(
                &format!("rate {} / {}", report::fmt(p.fault_rate, 4), s.policy),
                if p.fault_rate == 0.0 {
                    "0 faulted epochs, 0 quarantines"
                } else {
                    "completes; errors bounded"
                },
                &format!(
                    "ips err {}%, {} faulted, {} quarantined",
                    report::fmt(s.agg_ips_err_pct, 1),
                    s.fault_epochs,
                    s.quarantined_cores
                ),
            ));
        }
        println!("{}", report::comparison_table("Fault sweep", &cmp));
    }
    Ok((points, last_telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_limits_apps() {
        let cfg = ExpConfig::quick();
        assert_eq!(cfg.app_list().len(), 6);
        let full = ExpConfig::full();
        assert_eq!(full.app_list().len(), 24);
    }

    #[test]
    fn best_dimension_picks_elbow() {
        let pts = vec![
            Fig07Point {
                dimension: 2,
                err_ips_pct: 30.0,
                err_power_pct: 20.0,
            },
            Fig07Point {
                dimension: 4,
                err_ips_pct: 11.0,
                err_power_pct: 9.0,
            },
            Fig07Point {
                dimension: 6,
                err_ips_pct: 11.0,
                err_power_pct: 9.0,
            },
            Fig07Point {
                dimension: 8,
                err_ips_pct: 10.5,
                err_power_pct: 9.0,
            },
        ];
        assert_eq!(best_dimension(&pts), 4);
    }
}
