//! Memoized controller-design artifacts shared across one harness run.
//!
//! Several figures deploy the *same* design: fig09/fig11/fig12/tab-opt all
//! start from `design_mimo(FreqCache, seed)`, and the decoupled / heuristic
//! / baseline architectures are likewise pure functions of a small key. The
//! multi-thousand-epoch excitation recording, ARX least-squares, and DARE
//! synthesis behind each of those is the most expensive non-simulation work
//! in `mimo-exp all`, so a [`DesignCache`] computes each distinct design
//! once and hands every caller the same [`Arc`].
//!
//! Concurrency discipline: each key maps to an `Arc<OnceLock<V>>` slot.
//! The map lock is held only long enough to fetch/insert the slot; the
//! expensive compute runs inside `OnceLock::get_or_init` *outside* the map
//! lock, so two workers asking for *different* designs never serialize,
//! while two workers racing on the *same* key block until the single
//! initializer finishes (compute-once, not compute-twice-drop-one).

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use mimo_core::decoupled::DecoupledGovernor;
use mimo_core::design::{DesignFlow, ValidatedDesign};
use mimo_core::heuristic::SensitivityRanking;
use mimo_core::optimizer::Metric;
use mimo_core::weights::WeightSet;
use mimo_core::Result;
use mimo_sim::{InputSet, PlantConfig};

use crate::setup;

/// Everything that determines a MIMO design's output (§V's Figure 3 flow
/// is deterministic given these): the actuator set, an optional explicit
/// weight set (`None` = the flow's Table III default), the ARX denominator
/// order, and the seed that drives excitation and plant noise.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DesignKey {
    /// Which actuators the controller commands.
    pub input_set: InputSet,
    /// Explicit weight override, or `None` for the flow default.
    pub weights: Option<WeightSet>,
    /// ARX denominator order `na` used by identification.
    pub arx_na: usize,
    /// Seed for excitation recording and training-plant noise.
    pub seed: u64,
}

/// One memoization table: key → compute-once slot.
type Table<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>>>;

struct CacheInner {
    designs: Table<DesignKey, Result<Arc<ValidatedDesign>>>,
    decoupled: Table<u64, Result<DecoupledGovernor>>,
    rankings: Table<(InputSet, u64), SensitivityRanking>,
    baselines: Table<(InputSet, Metric, u64), PlantConfig>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A process-wide memo of design-flow products, cheap to clone (it is an
/// [`Arc`] around the tables) and safe to share across grid workers.
#[derive(Clone)]
pub struct DesignCache {
    inner: Arc<CacheInner>,
}

impl Default for DesignCache {
    fn default() -> Self {
        DesignCache {
            inner: Arc::new(CacheInner {
                designs: Mutex::new(HashMap::new()),
                decoupled: Mutex::new(HashMap::new()),
                rankings: Mutex::new(HashMap::new()),
                baselines: Mutex::new(HashMap::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }
}

impl fmt::Debug for DesignCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("DesignCache")
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

/// Looks up `key` in `table`, computing with `compute` on a miss. The map
/// lock is dropped before `compute` runs; concurrent same-key callers
/// block on the slot's `OnceLock` instead of recomputing.
fn get_or_compute<K, V, F>(
    table: &Table<K, V>,
    hits: &AtomicU64,
    misses: &AtomicU64,
    key: K,
    compute: F,
) -> V
where
    K: Eq + Hash,
    V: Clone,
    F: FnOnce() -> V,
{
    let slot = {
        let mut map = table.lock().expect("design-cache table poisoned");
        Arc::clone(map.entry(key).or_default())
    };
    let mut computed = false;
    let value = slot.get_or_init(|| {
        computed = true;
        compute()
    });
    if computed {
        misses.fetch_add(1, Ordering::Relaxed);
    } else {
        hits.fetch_add(1, Ordering::Relaxed);
    }
    value.clone()
}

impl DesignCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        DesignCache::default()
    }

    /// `(hits, misses)` across all tables since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.inner.hits.load(Ordering::Relaxed),
            self.inner.misses.load(Ordering::Relaxed),
        )
    }

    /// Memoized [`setup::design_mimo`]: the Figure 3 flow with the
    /// default Table III weights.
    ///
    /// # Errors
    ///
    /// Propagates (and memoizes) identification/synthesis/RSA failures —
    /// a failing design fails the same way for every caller.
    pub fn design_mimo(&self, input_set: InputSet, seed: u64) -> Result<Arc<ValidatedDesign>> {
        self.design_mimo_with(input_set, seed, None)
    }

    /// Memoized [`setup::design_mimo_with`].
    ///
    /// # Errors
    ///
    /// Propagates (and memoizes) identification/synthesis/RSA failures.
    pub fn design_mimo_with(
        &self,
        input_set: InputSet,
        seed: u64,
        weights: Option<WeightSet>,
    ) -> Result<Arc<ValidatedDesign>> {
        let arx_na = match input_set {
            InputSet::FreqCache => DesignFlow::two_input().arx_na,
            InputSet::FreqCacheRob => DesignFlow::three_input().arx_na,
        };
        let key = DesignKey {
            input_set,
            weights: weights.clone(),
            arx_na,
            seed,
        };
        get_or_compute(
            &self.inner.designs,
            &self.inner.hits,
            &self.inner.misses,
            key,
            || setup::design_mimo_with(input_set, seed, weights).map(Arc::new),
        )
    }

    /// Memoized [`setup::decoupled_governor`] (keyed by seed only — the
    /// decoupled architecture is two-input by construction).
    ///
    /// # Errors
    ///
    /// Propagates (and memoizes) SISO design failures.
    pub fn decoupled_governor(&self, seed: u64) -> Result<DecoupledGovernor> {
        get_or_compute(
            &self.inner.decoupled,
            &self.inner.hits,
            &self.inner.misses,
            seed,
            || setup::decoupled_governor(seed),
        )
    }

    /// Memoized [`setup::heuristic_ranking`].
    pub fn heuristic_ranking(&self, input_set: InputSet, seed: u64) -> SensitivityRanking {
        get_or_compute(
            &self.inner.rankings,
            &self.inner.hits,
            &self.inner.misses,
            (input_set, seed),
            || setup::heuristic_ranking(input_set, seed),
        )
    }

    /// Memoized [`setup::baseline_config`] (the grid profile behind the
    /// Baseline architecture is the second-costliest design step).
    pub fn baseline_config(&self, input_set: InputSet, metric: Metric, seed: u64) -> PlantConfig {
        get_or_compute(
            &self.inner.baselines,
            &self.inner.hits,
            &self.inner.misses,
            (input_set, metric, seed),
            || setup::baseline_config(input_set, metric, seed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_hit_returns_the_same_arc() {
        let cache = DesignCache::new();
        let a = cache.design_mimo(InputSet::FreqCache, 11).unwrap();
        let b = cache.design_mimo(InputSet::FreqCache, 11).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "warm hit must share the cold Arc");
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn different_seed_misses() {
        let cache = DesignCache::new();
        let a = cache.design_mimo(InputSet::FreqCache, 11).unwrap();
        let b = cache.design_mimo(InputSet::FreqCache, 12).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "different seeds are distinct keys");
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn weight_override_is_part_of_the_key() {
        let cache = DesignCache::new();
        let default = cache.design_mimo(InputSet::FreqCache, 11).unwrap();
        let explicit = cache
            .design_mimo_with(
                InputSet::FreqCache,
                11,
                Some(WeightSet::table_iii_two_input()),
            )
            .unwrap();
        // Same numeric weights, but `None` vs `Some` are distinct keys
        // (the flow default could diverge from Table III).
        assert!(!Arc::ptr_eq(&default, &explicit));
        let again = cache
            .design_mimo_with(
                InputSet::FreqCache,
                11,
                Some(WeightSet::table_iii_two_input()),
            )
            .unwrap();
        assert!(Arc::ptr_eq(&explicit, &again));
    }

    #[test]
    fn aux_tables_memoize_and_count() {
        let cache = DesignCache::new();
        let r1 = cache.heuristic_ranking(InputSet::FreqCache, 3);
        let r2 = cache.heuristic_ranking(InputSet::FreqCache, 3);
        assert_eq!(r1.order, r2.order);
        let d1 = cache.decoupled_governor(7).unwrap();
        let _d2 = cache.decoupled_governor(7).unwrap();
        let _ = d1;
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (2, 2));
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let cache = DesignCache::new();
        let designs: Vec<Arc<ValidatedDesign>> = crate::par::par_map(4, vec![(); 4], |_, ()| {
            cache.design_mimo(InputSet::FreqCache, 21).unwrap()
        });
        for d in &designs[1..] {
            assert!(Arc::ptr_eq(&designs[0], d));
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1, "exactly one initializer ran");
        assert_eq!(hits, 3);
    }

    #[test]
    fn clones_share_the_same_tables() {
        let cache = DesignCache::new();
        let clone = cache.clone();
        let a = cache.design_mimo(InputSet::FreqCache, 31).unwrap();
        let b = clone.design_mimo(InputSet::FreqCache, 31).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), clone.stats());
    }
}
