//! # mimo-exp
//!
//! The experiment harness: regenerates every figure and table of the
//! paper's evaluation (§VII–VIII) against the `mimo-sim` plant, comparing
//! the four architectures of Table IV (Baseline, Heuristic, Decoupled,
//! MIMO).
//!
//! One binary — the `mimo-exp` CLI — reproduces every paper artifact from
//! a declarative scenario spec. `mimo-exp run <spec.toml>` is the primary
//! entry point; one spec per experiment is checked in under `specs/`, and
//! the per-figure subcommands are thin aliases over compile-time copies of
//! those files (pinned byte-identical by test), so either route produces
//! the same bytes:
//!
//! | subcommand    | spec | paper artifact |
//! |---------------|------|----------------|
//! | `fig06`       | `specs/fig06.toml` | Figure 6 + Table V: weight-choice sensitivity |
//! | `fig07`       | `specs/fig07.toml` | Figure 7: max model error vs state dimension |
//! | `fig08`       | `specs/fig08.toml` | Figure 8: convergence epochs vs guardbands |
//! | `fig09`       | `specs/fig09.toml` | Figure 9: E×D vs Baseline, 2 inputs |
//! | `fig10`       | `specs/fig10.toml` | Figure 10: E×D vs Baseline, 3 inputs |
//! | `fig11`       | `specs/fig11.toml` | Figure 11: tracking-error scatter |
//! | `fig12`       | `specs/fig12.toml` | Figure 12: time-varying (QoE/battery) tracking |
//! | `tab-opt`     | `specs/tab_opt.toml` | §VIII-F text: E and E×D² reductions |
//! | `fleet-scale` | `specs/fleet_scale.toml` | fleet sizes × worker counts under one budget |
//! | `cluster-scale` | `specs/cluster_scale.toml` | chips × cores under one datacenter budget |
//! | `fault-sweep` | `specs/fault_sweep.toml` | fault rate × policy on a 16-core fleet |
//! | `phase-step`  | `specs/phase_step.toml` | spec-only: stepped reference schedule |
//! | `cluster-fault` | `specs/cluster_fault.toml` | spec-only: mid-run chip fault + quarantine |
//! | `cluster-bank` | `specs/cluster_bank.toml` | spec-only: banked cluster, mid-run bank eviction |
//! | `all`         | every spec above | runs the full suite (the default) |
//!
//! `mimo-exp validate <path>...` checks specs without running them;
//! `mimo-exp schema` prints the key reference. Malformed specs exit
//! non-zero naming the offending file, line, and key.
//!
//! Shared flags: `--epochs N` resizes tracking runs, `--out DIR` redirects
//! the CSVs, `--jobs N` (or `MIMO_JOBS`) sets the grid worker count —
//! results are bit-identical at any value — `--timing` writes
//! `BENCH_harness.json`, `--shards N` pins a cluster spec's shard count,
//! and `--trace PATH` (fault-sweep only) writes a JSONL epoch trace
//! drained from per-core telemetry sinks.
//!
//! The library half holds the pieces the CLI shares with integration
//! tests: the scenario spec layer ([`spec`]), controller construction
//! ([`setup`]), the memoized design cache ([`cache`]), the deterministic
//! parallel grid ([`par`]), the epoch-loop drivers and metrics
//! ([`runner`]), the battery/QoE reference schedule ([`qoe`]), wall-clock
//! instrumentation ([`timing`]), and CSV / table output ([`report`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod cache;
pub mod experiments;
pub mod par;
pub mod qoe;
pub mod report;
pub mod runner;
pub mod setup;
pub mod spec;
pub mod timing;

/// The fixed tracking targets of §VII-B1. The paper uses 2.5 BIPS / 2 W,
/// chosen by a design-space exploration so the IPS target is aggressive —
/// "infeasible for highly memory-bound applications" and a stretch even
/// for the rest. Our plant's efficiency frontier sits slightly higher, so
/// the equivalent aggressive point is 3.0 BIPS at 1.9 W (see
/// EXPERIMENTS.md for the calibration).
pub const TARGET_IPS: f64 = 3.0;
/// See [`TARGET_IPS`].
pub const TARGET_POWER: f64 = 1.9;
