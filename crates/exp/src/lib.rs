//! # mimo-exp
//!
//! The experiment harness: regenerates every figure and table of the
//! paper's evaluation (§VII–VIII) against the `mimo-sim` plant, comparing
//! the four architectures of Table IV (Baseline, Heuristic, Decoupled,
//! MIMO).
//!
//! One binary — the `mimo-exp` CLI — reproduces every paper artifact as a
//! subcommand, writing a CSV next to a printed summary:
//!
//! | subcommand    | paper artifact | what it reports |
//! |---------------|----------------|-----------------|
//! | `fig06`       | Figure 6 + Table V | weight-choice sensitivity on `namd` |
//! | `fig07`       | Figure 7 | max model error vs state dimension |
//! | `fig08`       | Figure 8 | convergence epochs, high vs low guardbands |
//! | `fig09`       | Figure 9 | E×D vs Baseline, 2 inputs, per app |
//! | `fig10`       | Figure 10 | E×D vs Baseline, 3 inputs, per app |
//! | `fig11`       | Figure 11 | tracking-error scatter, responsive / non-responsive |
//! | `fig12`       | Figure 12 | time-varying (QoE/battery) tracking traces |
//! | `tab-opt`     | §VIII-F text | E and E×D² reductions |
//! | `fleet-scale` | §VII discussion | fleet sizes × worker counts under one budget |
//! | `fault-sweep` | §VII discussion | fault rate × policy on a 16-core fleet |
//! | `all`         | everything | runs the full suite (the default) |
//!
//! Shared flags: `--epochs N` resizes tracking runs, `--out DIR` redirects
//! the CSVs, `--jobs N` (or `MIMO_JOBS`) sets the grid worker count —
//! results are bit-identical at any value — `--timing` writes
//! `BENCH_harness.json`, and `--trace PATH` (fault-sweep only) writes a
//! JSONL epoch trace drained from per-core telemetry sinks.
//!
//! The library half holds the pieces the CLI shares with integration
//! tests: controller construction ([`setup`]), the memoized design cache
//! ([`cache`]), the deterministic parallel grid ([`par`]), the epoch-loop
//! drivers and metrics ([`runner`]), the battery/QoE reference schedule
//! ([`qoe`]), wall-clock instrumentation ([`timing`]), and CSV / table
//! output ([`report`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod cache;
pub mod experiments;
pub mod par;
pub mod qoe;
pub mod report;
pub mod runner;
pub mod setup;
pub mod timing;

/// The fixed tracking targets of §VII-B1. The paper uses 2.5 BIPS / 2 W,
/// chosen by a design-space exploration so the IPS target is aggressive —
/// "infeasible for highly memory-bound applications" and a stretch even
/// for the rest. Our plant's efficiency frontier sits slightly higher, so
/// the equivalent aggressive point is 3.0 BIPS at 1.9 W (see
/// EXPERIMENTS.md for the calibration).
pub const TARGET_IPS: f64 = 3.0;
/// See [`TARGET_IPS`].
pub const TARGET_POWER: f64 = 1.9;
