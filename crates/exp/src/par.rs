//! Index-ordered parallel map for the experiment grid.
//!
//! The paper's evaluation is an embarrassingly parallel grid — workload ×
//! governor × configuration cells, each owning its own seeded plant — so
//! the harness fans cells across the shared persistent worker pool
//! ([`mimo_fleet::pool::global`]; no external thread-pool dependency, no
//! per-run thread spawns) and collects results **in cell-index order**.
//! Determinism falls out of two rules:
//!
//! 1. every cell computes from its own index-derived seed, never from
//!    shared mutable state, and
//! 2. reduction and emission always walk the results by cell index.
//!
//! Together they make CSVs and digests bit-identical at any job count.

use std::sync::Mutex;

/// Environment variable consulted when no `--jobs` flag is given.
pub const JOBS_ENV: &str = "MIMO_JOBS";

/// Default worker count: the host's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Resolves the worker count for a run: an explicit flag wins, then the
/// `MIMO_JOBS` environment variable, then [`default_jobs`]. Zero is
/// rejected from either source — a grid with no workers cannot run.
///
/// # Errors
///
/// Returns a human-readable message for `0` or a non-integer `MIMO_JOBS`.
pub fn resolve_jobs(flag: Option<usize>) -> Result<usize, String> {
    if let Some(n) = flag {
        if n == 0 {
            return Err(
                "--jobs must be at least 1 (0 would leave the grid with no workers)".into(),
            );
        }
        return Ok(n);
    }
    match std::env::var(JOBS_ENV) {
        Ok(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("{JOBS_ENV} must be a positive integer, got {v:?}"))?;
            if n == 0 {
                return Err(format!("{JOBS_ENV} must be at least 1, got 0"));
            }
            Ok(n)
        }
        Err(_) => Ok(default_jobs()),
    }
}

/// Applies `f` to every item on up to `jobs` shared-pool workers and
/// returns the results **in item order**, regardless of which worker
/// finished which cell first.
///
/// `jobs <= 1` (or a grid of at most one cell) short-circuits to a plain
/// serial map on the calling thread — same code path the workers run, no
/// pool handoff. The pool hands out cell *indices* one at a time, so
/// stragglers don't stall idle workers the way static chunking would —
/// and because nested pool submissions execute inline, a cell that itself
/// runs a fleet (or another `par_map`) cannot deadlock.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller once the batch drains.
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    // Input cells are taken by value through per-slot mutexes; results
    // land in index-addressed slots, so collection order is the item
    // order no matter the completion order.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    mimo_fleet::pool::global().run_bounded(n, workers, &|i| {
        let item = slots[i]
            .lock()
            .expect("cell slot poisoned")
            .take()
            .expect("each cell index is claimed exactly once");
        let r = f(i, item);
        *results[i].lock().expect("result slot poisoned") = Some(r);
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every cell index was visited")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_at_any_job_count() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 4, 8, 200] {
            let got = par_map(jobs, items.clone(), |i, x| {
                assert_eq!(i, x);
                x * 3 + 1
            });
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_grids() {
        let none: Vec<i32> = par_map(4, Vec::<i32>::new(), |_, x| x);
        assert!(none.is_empty());
        assert_eq!(par_map(4, vec![7], |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn results_come_back_in_order_even_when_late_cells_finish_first() {
        // Earlier cells sleep longer, so with >1 worker the completion
        // order inverts the index order; collection must not.
        let items: Vec<u64> = (0..8).collect();
        let got = par_map(4, items, |_, x| {
            std::thread::sleep(std::time::Duration::from_millis(8 - x));
            x
        });
        assert_eq!(got, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_par_map_cannot_deadlock() {
        // A cell that itself fans out — a spec grid whose cells run
        // fleets, or a harness calling the harness. The shared pool runs
        // nested submissions inline, so this must complete rather than
        // wedge on the pool's single batch slot.
        let outer = par_map(4, (0..6).collect::<Vec<usize>>(), |_, x| {
            let inner = par_map(4, (0..5).collect::<Vec<usize>>(), |_, y| x * 10 + y);
            inner.iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..6).map(|x| (0..5).map(|y| x * 10 + y).sum()).collect();
        assert_eq!(outer, expected);
    }

    #[test]
    fn fallible_cells_collect_in_order() {
        let results: Vec<Result<usize, String>> = par_map(3, (0..6).collect(), |_, x| {
            if x == 4 {
                Err(format!("cell {x} failed"))
            } else {
                Ok(x)
            }
        });
        let first_err = results.into_iter().collect::<Result<Vec<_>, _>>();
        assert_eq!(first_err.unwrap_err(), "cell 4 failed");
    }

    #[test]
    fn resolve_jobs_validates_flag_and_env() {
        // Explicit flag wins and 0 is rejected.
        assert_eq!(resolve_jobs(Some(3)), Ok(3));
        assert!(resolve_jobs(Some(0)).is_err());
        // Env fallback. Env mutation is process-global: this is the only
        // test that touches MIMO_JOBS, and it restores the prior state.
        let saved = std::env::var(JOBS_ENV).ok();
        std::env::set_var(JOBS_ENV, "5");
        assert_eq!(resolve_jobs(None), Ok(5));
        assert_eq!(resolve_jobs(Some(2)), Ok(2), "flag still wins over env");
        std::env::set_var(JOBS_ENV, "0");
        assert!(resolve_jobs(None).is_err());
        std::env::set_var(JOBS_ENV, "many");
        assert!(resolve_jobs(None).is_err());
        match saved {
            Some(v) => std::env::set_var(JOBS_ENV, v),
            None => std::env::remove_var(JOBS_ENV),
        }
        // With neither flag nor env, the host default applies.
        assert!(resolve_jobs(None).unwrap() >= 1);
    }
}
