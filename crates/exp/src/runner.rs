//! Epoch-loop drivers and metrics.
//!
//! Three drivers, matching the paper's three controller uses (§V):
//!
//! * [`run_tracking`] — fixed references (§VIII-D, Figures 6, 8, 11).
//! * [`run_schedule`] — time-varying references (§VIII-E, Figure 12).
//! * [`run_optimization`] — optimizer-driven E·D^(k−1) minimization
//!   (§VIII-F/G, Figures 9, 10).

use mimo_core::governor::Governor;
use mimo_core::optimizer::{Metric, Optimizer, MAX_TRIES};
use mimo_linalg::Vector;
use mimo_sim::{Plant, PlantConfig, Processor, EPOCH_US};

/// Epochs discarded from the front of a run when computing averages
/// (controller warm-up).
const WARMUP_EPOCHS: usize = 200;

/// Tracking-run metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackingStats {
    /// Average |y − y₀| / y₀ per output, in percent, after warm-up.
    pub avg_err_pct: Vec<f64>,
    /// Epochs until each *input* last changed by more than one grid step
    /// (the paper's "epochs to achieve steady state" per input); `None`
    /// if the input never settles.
    pub steady_epoch: Vec<Option<usize>>,
    /// Mean outputs over the final quarter of the run.
    pub final_outputs: Vector,
    /// Recorded output trace (per epoch) when requested.
    pub trace: Option<Vec<Vector>>,
}

/// Drives `gov` against `plant` toward fixed `targets` for `epochs`.
pub fn run_tracking(
    gov: &mut dyn Governor,
    plant: &mut Processor,
    targets: &Vector,
    epochs: usize,
    keep_trace: bool,
) -> TrackingStats {
    gov.set_targets(targets);
    let grids = plant.input_grids();
    let mut y = initial_outputs(plant);
    let mut u_hist: Vec<Vector> = Vec::with_capacity(epochs);
    let mut y_hist: Vec<Vector> = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let u = gov.decide(&y, plant.phase_changed());
        y = plant.apply(&u);
        u_hist.push(u);
        y_hist.push(y.clone());
    }
    summarize(&u_hist, &y_hist, targets, &grids, keep_trace)
}

fn initial_outputs(plant: &mut Processor) -> Vector {
    // One epoch at the current configuration provides the first reading.
    let u = Vector::from_slice(&plant.config().to_actuation(plant.input_set()));
    plant.apply(&u)
}

fn summarize(
    u_hist: &[Vector],
    y_hist: &[Vector],
    targets: &Vector,
    grids: &[Vec<f64>],
    keep_trace: bool,
) -> TrackingStats {
    let epochs = y_hist.len();
    let o = targets.len();
    let warm = WARMUP_EPOCHS.min(epochs / 4);

    let mut avg_err_pct = vec![0.0; o];
    let mut n = 0usize;
    for y in &y_hist[warm..] {
        for c in 0..o {
            avg_err_pct[c] += ((y[c] - targets[c]) / targets[c].max(1e-9)).abs() * 100.0;
        }
        n += 1;
    }
    for e in &mut avg_err_pct {
        *e /= n.max(1) as f64;
    }

    // Steady-state epoch per input: last time the input moved by more than
    // one grid step from its final value.
    let n_inputs = grids.len();
    let mut steady_epoch = vec![None; n_inputs];
    if let Some(last_u) = u_hist.last() {
        for i in 0..n_inputs {
            let step = grid_step(&grids[i]);
            let final_v = last_u[i];
            let mut last_move = 0usize;
            for (t, u) in u_hist.iter().enumerate() {
                if (u[i] - final_v).abs() > step * 1.01 {
                    last_move = t + 1;
                }
            }
            // The input never settles if it was still away from its final
            // value in the last tenth of the run.
            steady_epoch[i] = if last_move < epochs.saturating_sub(epochs / 10) {
                Some(last_move)
            } else {
                None
            };
        }
    }

    // Mean over the final quarter; an empty run has no final window (the
    // unguarded `epochs - quarter` underflowed when epochs == 0).
    let quarter = (epochs / 4).max(1).min(epochs);
    let mut final_outputs = Vector::zeros(o);
    for y in &y_hist[epochs - quarter..] {
        final_outputs += y;
    }
    if quarter > 0 {
        final_outputs = final_outputs.scale(1.0 / quarter as f64);
    }

    TrackingStats {
        avg_err_pct,
        steady_epoch,
        final_outputs,
        trace: keep_trace.then(|| y_hist.to_vec()),
    }
}

fn grid_step(grid: &[f64]) -> f64 {
    grid.windows(2)
        .map(|w| w[1] - w[0])
        .fold(f64::INFINITY, f64::min)
        .max(1e-9)
}

/// One reference step of a time-varying schedule: from `epoch` on, track
/// `targets`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceStep {
    /// First epoch at which these targets apply.
    pub epoch: usize,
    /// `[IPS, power]` targets.
    pub targets: Vector,
}

/// Time-varying-run result: the full output trace plus the reference
/// applied at each epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleTrace {
    /// Measured outputs per epoch.
    pub outputs: Vec<Vector>,
    /// Reference in force per epoch.
    pub references: Vec<Vector>,
}

impl ScheduleTrace {
    /// Mean |IPS − IPS₀| / IPS₀ over the run, in percent.
    pub fn ips_tracking_error_pct(&self) -> f64 {
        let mut acc = 0.0;
        for (y, r) in self.outputs.iter().zip(&self.references) {
            acc += ((y[0] - r[0]) / r[0].max(1e-9)).abs();
        }
        acc / self.outputs.len().max(1) as f64 * 100.0
    }
}

/// Drives `gov` through a piecewise-constant reference schedule (§VIII-E).
pub fn run_schedule(
    gov: &mut dyn Governor,
    plant: &mut Processor,
    schedule: &[ReferenceStep],
    epochs: usize,
) -> ScheduleTrace {
    assert!(!schedule.is_empty(), "schedule must have at least one step");
    let mut y = initial_outputs(plant);
    let mut outputs = Vec::with_capacity(epochs);
    let mut references = Vec::with_capacity(epochs);
    let mut step_idx = 0;
    gov.set_targets(&schedule[0].targets);
    for t in 0..epochs {
        while step_idx + 1 < schedule.len() && schedule[step_idx + 1].epoch <= t {
            step_idx += 1;
            gov.set_targets(&schedule[step_idx].targets);
        }
        let u = gov.decide(&y, plant.phase_changed());
        y = plant.apply(&u);
        outputs.push(y.clone());
        references.push(schedule[step_idx].targets.clone());
    }
    ScheduleTrace {
        outputs,
        references,
    }
}

/// Optimization-run result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizationStats {
    /// `E·D^(k−1)` per billion instructions over the run.
    pub ed_product: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Total time in seconds.
    pub time_s: f64,
    /// Instructions executed, billions.
    pub instructions_g: f64,
}

/// Epochs the tracking loop is given to converge on each optimizer trial.
const CONVERGE_EPOCHS: usize = 200;
/// Epochs averaged to score a trial.
const SCORE_EPOCHS: usize = 80;

/// Runs a *tracking* governor (MIMO or Decoupled) under the §V optimizer
/// until `budget_g` billions of instructions complete; returns the
/// energy/delay metrics for the executed work.
pub fn run_optimization(
    gov: &mut dyn Governor,
    plant: &mut Processor,
    metric: Metric,
    budget_g: f64,
) -> OptimizationStats {
    // §VI-B: every search starts from the midrange configuration.
    let mid = PlantConfig::midrange();
    let mut y = Vector::zeros(2);
    for _ in 0..SCORE_EPOCHS {
        let obs = plant.step_config(mid);
        y = Vector::from_slice(&[obs.ips_bips, obs.power_w]);
    }
    let (start_ips, start_p) = (y[0], y[1]);
    let mut opt = Optimizer::new(metric, start_ips, start_p, MAX_TRIES);
    gov.set_targets(&opt.targets());

    let mut window: Vec<Vector> = Vec::new();
    let mut epochs_on_trial = 0usize;
    while plant.totals().instructions_g < budget_g {
        let phase_changed = plant.phase_changed();
        if phase_changed && opt.is_done() {
            // §V: a new search starts when the application changes phases.
            opt.restart(y[0], y[1]);
            gov.set_targets(&opt.targets());
            epochs_on_trial = 0;
            window.clear();
        }
        let u = gov.decide(&y, phase_changed);
        y = plant.apply(&u);
        epochs_on_trial += 1;
        if !opt.is_done() {
            if epochs_on_trial > CONVERGE_EPOCHS - SCORE_EPOCHS {
                window.push(y.clone());
            }
            if epochs_on_trial >= CONVERGE_EPOCHS {
                let mut avg = Vector::zeros(2);
                for v in &window {
                    avg += v;
                }
                avg = avg.scale(1.0 / window.len().max(1) as f64);
                if let Some(next) = opt.observe(avg[0], avg[1]) {
                    gov.set_targets(&next);
                } else {
                    // Hold the best point found.
                    gov.set_targets(&opt.targets());
                }
                window.clear();
                epochs_on_trial = 0;
            }
        }
    }
    stats_from(plant, metric)
}

/// Runs a self-contained governor (Baseline, or the Heuristic's own
/// optimization search) until the instruction budget completes.
pub fn run_self_directed(
    gov: &mut dyn Governor,
    plant: &mut Processor,
    metric: Metric,
    budget_g: f64,
) -> OptimizationStats {
    let mut y = initial_outputs(plant);
    while plant.totals().instructions_g < budget_g {
        let u = gov.decide(&y, plant.phase_changed());
        y = plant.apply(&u);
    }
    stats_from(plant, metric)
}

fn stats_from(plant: &Processor, metric: Metric) -> OptimizationStats {
    let t = plant.totals();
    OptimizationStats {
        ed_product: t.energy_delay_product(metric.exponent() as u32),
        energy_j: t.energy_j,
        time_s: t.time_s,
        instructions_g: t.instructions_g,
    }
}

/// Convenience: epochs corresponding to a wall-clock duration.
pub fn epochs_for_ms(ms: f64) -> usize {
    ((ms * 1000.0) / EPOCH_US).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;
    use mimo_core::governor::FixedGovernor;
    use mimo_sim::InputSet;

    #[test]
    fn epochs_for_ms_converts() {
        assert_eq!(epochs_for_ms(10.0), 200);
        assert_eq!(epochs_for_ms(0.05), 1);
    }

    #[test]
    fn tracking_zero_epochs_returns_zeroed_stats() {
        // Regression: summarize() used to underflow on an empty history.
        let mut gov = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
        let mut plant = setup::plant("namd", InputSet::FreqCache, 1);
        let targets = Vector::from_slice(&[2.5, 2.0]);
        let stats = run_tracking(&mut gov, &mut plant, &targets, 0, true);
        assert_eq!(stats.avg_err_pct, vec![0.0, 0.0]);
        assert_eq!(stats.final_outputs, Vector::zeros(2));
        assert_eq!(stats.steady_epoch, vec![None, None]);
        assert_eq!(stats.trace, Some(vec![]));
    }

    #[test]
    fn tracking_single_epoch_is_finite() {
        let mut gov = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
        let mut plant = setup::plant("astar", InputSet::FreqCache, 2);
        let targets = Vector::from_slice(&[2.5, 2.0]);
        let stats = run_tracking(&mut gov, &mut plant, &targets, 1, false);
        assert!(stats.avg_err_pct.iter().all(|e| e.is_finite()));
        // The single observed epoch is the "final quarter".
        assert!(stats.final_outputs[0] > 0.0);
        assert!(stats.final_outputs[1] > 0.0);
    }

    #[test]
    fn tracking_shorter_than_warmup_still_averages() {
        // Fewer epochs than WARMUP_EPOCHS: the warm-up window shrinks to a
        // quarter of the run instead of swallowing it whole.
        let mut gov = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
        let mut plant = setup::plant("namd", InputSet::FreqCache, 3);
        let targets = Vector::from_slice(&[2.5, 2.0]);
        let stats = run_tracking(&mut gov, &mut plant, &targets, 40, false);
        assert!(stats.avg_err_pct.iter().all(|e| e.is_finite() && *e > 0.0));
    }

    #[test]
    fn tracking_with_fixed_governor_reports_errors() {
        let mut gov = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
        let mut plant = setup::plant("namd", InputSet::FreqCache, 1);
        let targets = Vector::from_slice(&[2.5, 2.0]);
        let stats = run_tracking(&mut gov, &mut plant, &targets, 800, false);
        assert_eq!(stats.avg_err_pct.len(), 2);
        assert!(stats.avg_err_pct[0] > 0.0);
        // Fixed inputs settle immediately.
        assert_eq!(stats.steady_epoch, vec![Some(0), Some(0)]);
        assert!(stats.trace.is_none());
    }

    #[test]
    fn mimo_tracking_beats_fixed_on_namd() {
        let mut mimo = setup::mimo_governor(InputSet::FreqCache, 2).unwrap();
        let mut plant = setup::plant("namd", InputSet::FreqCache, 3);
        let targets = Vector::from_slice(&[2.5, 2.0]);
        let mimo_stats = run_tracking(&mut mimo, &mut plant, &targets, 3000, false);

        let mut fixed = FixedGovernor::new(Vector::from_slice(&[1.0, 4.0]));
        let mut plant2 = setup::plant("namd", InputSet::FreqCache, 3);
        let fixed_stats = run_tracking(&mut fixed, &mut plant2, &targets, 3000, false);

        let mimo_total: f64 = mimo_stats.avg_err_pct.iter().sum();
        let fixed_total: f64 = fixed_stats.avg_err_pct.iter().sum();
        assert!(
            mimo_total < fixed_total,
            "MIMO {mimo_stats:?} vs fixed {fixed_stats:?}"
        );
        // MIMO should track power well on a responsive app.
        assert!(
            mimo_stats.avg_err_pct[1] < 12.0,
            "power error {:?}",
            mimo_stats.avg_err_pct
        );
    }

    #[test]
    fn schedule_switches_references() {
        let mut gov = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
        let mut plant = setup::plant("astar", InputSet::FreqCache, 4);
        let schedule = vec![
            ReferenceStep {
                epoch: 0,
                targets: Vector::from_slice(&[2.0, 1.5]),
            },
            ReferenceStep {
                epoch: 50,
                targets: Vector::from_slice(&[1.0, 1.0]),
            },
        ];
        let trace = run_schedule(&mut gov, &mut plant, &schedule, 100);
        assert_eq!(trace.outputs.len(), 100);
        assert_eq!(trace.references[0][0], 2.0);
        assert_eq!(trace.references[99][0], 1.0);
        assert!(trace.ips_tracking_error_pct() >= 0.0);
    }

    #[test]
    fn optimization_run_consumes_budget() {
        let mut gov = setup::mimo_governor(InputSet::FreqCache, 5).unwrap();
        let mut plant = setup::plant("gamess", InputSet::FreqCache, 6);
        let stats = run_optimization(&mut gov, &mut plant, Metric::EnergyDelay, 0.05);
        assert!(stats.instructions_g >= 0.05);
        assert!(stats.ed_product.is_finite() && stats.ed_product > 0.0);
        assert!(stats.energy_j > 0.0 && stats.time_s > 0.0);
    }
}
