//! Epoch-loop drivers and metrics.
//!
//! Three drivers, matching the paper's three controller uses (§V):
//!
//! * [`run_tracking`] — fixed references (§VIII-D, Figures 6, 8, 11).
//! * [`run_schedule`] — time-varying references (§VIII-E, Figure 12).
//! * [`run_optimization`] — optimizer-driven E·D^(k−1) minimization
//!   (§VIII-F/G, Figures 9, 10).
//!
//! Every driver is a thin configuration of the shared
//! [`mimo_core::engine::EpochLoop`]: the engine owns the epoch cadence
//! (decide → apply → record), history recording, and the
//! [`TrackingStats`] reduction, so the drivers differ only in how they
//! retarget the governor and when they stop.

use mimo_core::engine::{rel_tracking_error, EpochLoop, ScheduleCursor};
use mimo_core::governor::Governor;
use mimo_core::optimizer::{Metric, Optimizer, MAX_TRIES};
use mimo_linalg::Vector;
use mimo_sim::{Plant, PlantConfig, Processor, EPOCH_US};

pub use mimo_core::engine::{ReferenceStep, TrackingStats};

/// Drives `gov` against `plant` toward fixed `targets` for `epochs`.
pub fn run_tracking(
    gov: &mut dyn Governor,
    plant: &mut Processor,
    targets: &Vector,
    epochs: usize,
    keep_trace: bool,
) -> TrackingStats {
    let mut lp = EpochLoop::new(gov, plant);
    lp.set_targets(targets);
    lp.prime();
    lp.record_history(epochs);
    for _ in 0..epochs {
        lp.step();
    }
    lp.summarize(targets, keep_trace)
}

/// Like [`run_tracking`], but threads `obs` through the epoch loop so every
/// epoch lands in the observer (e.g. a
/// [`TelemetrySink`](mimo_core::telemetry::TelemetrySink)) alongside the
/// returned [`TrackingStats`]; the observer is handed back, run summary
/// delivered, for inspection or export.
pub fn run_tracking_observed<O: mimo_core::telemetry::Observer>(
    gov: &mut dyn Governor,
    plant: &mut Processor,
    targets: &Vector,
    epochs: usize,
    keep_trace: bool,
    obs: O,
) -> (TrackingStats, O) {
    let mut lp = EpochLoop::new(gov, plant).with_observer(obs);
    lp.set_targets(targets);
    lp.prime();
    lp.record_history(epochs);
    for _ in 0..epochs {
        lp.step();
    }
    lp.finish();
    let stats = lp.summarize(targets, keep_trace);
    let (_, _, obs) = lp.into_parts();
    (stats, obs)
}

/// Time-varying-run result: the full output trace plus the reference
/// applied at each epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleTrace {
    /// Measured outputs per epoch.
    pub outputs: Vec<Vector>,
    /// Reference in force per epoch.
    pub references: Vec<Vector>,
}

impl ScheduleTrace {
    /// Mean |IPS − IPS₀| / IPS₀ over the run, in percent.
    ///
    /// Degenerate references (zero or non-finite IPS targets) contribute
    /// a defined per-epoch error via
    /// [`mimo_core::engine::rel_tracking_error`] instead of a NaN or
    /// infinity that would poison the mean.
    pub fn ips_tracking_error_pct(&self) -> f64 {
        let mut acc = 0.0;
        for (y, r) in self.outputs.iter().zip(&self.references) {
            acc += rel_tracking_error(y[0], r[0]);
        }
        acc / self.outputs.len().max(1) as f64 * 100.0
    }
}

/// Drives `gov` through a piecewise-constant reference schedule (§VIII-E).
pub fn run_schedule(
    gov: &mut dyn Governor,
    plant: &mut Processor,
    schedule: &[ReferenceStep],
    epochs: usize,
) -> ScheduleTrace {
    let mut cursor = ScheduleCursor::new(schedule);
    let mut lp = EpochLoop::new(gov, plant);
    lp.prime();
    lp.record_history(epochs);
    let mut references = Vec::with_capacity(epochs);
    lp.set_targets(cursor.current());
    for t in 0..epochs {
        let targets = cursor.advance(t, |step| lp.set_targets(step));
        lp.step();
        references.push(targets.clone());
    }
    let (_, outputs) = lp.into_histories();
    ScheduleTrace {
        outputs,
        references,
    }
}

/// Optimization-run result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizationStats {
    /// `E·D^(k−1)` per billion instructions over the run.
    pub ed_product: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Total time in seconds.
    pub time_s: f64,
    /// Instructions executed, billions.
    pub instructions_g: f64,
}

/// Epochs the tracking loop is given to converge on each optimizer trial.
const CONVERGE_EPOCHS: usize = 200;
/// Epochs averaged to score a trial.
const SCORE_EPOCHS: usize = 80;

/// Runs a *tracking* governor (MIMO or Decoupled) under the §V optimizer
/// until `budget_g` billions of instructions complete; returns the
/// energy/delay metrics for the executed work.
pub fn run_optimization(
    gov: &mut dyn Governor,
    plant: &mut Processor,
    metric: Metric,
    budget_g: f64,
) -> OptimizationStats {
    // §VI-B: every search starts from the midrange configuration.
    let mid = PlantConfig::midrange();
    let mut y = Vector::zeros(2);
    for _ in 0..SCORE_EPOCHS {
        let obs = plant.step_config(mid);
        y = Vector::from_slice(&[obs.ips_bips, obs.power_w]);
    }
    let (start_ips, start_p) = (y[0], y[1]);
    let mut opt = Optimizer::new(metric, start_ips, start_p, MAX_TRIES);

    let mut lp = EpochLoop::new(gov, plant);
    lp.seed_outputs(&y);
    lp.set_targets(&opt.targets());

    let mut window: Vec<Vector> = Vec::new();
    let mut epochs_on_trial = 0usize;
    while lp.plant().totals().instructions_g < budget_g {
        // `EpochLoop::step` reads the same flag internally; the plant does
        // not advance in between, so both reads agree.
        let phase_changed = lp.plant().phase_changed();
        if phase_changed && opt.is_done() {
            // §V: a new search starts when the application changes phases.
            let y = lp.outputs();
            opt.restart(y[0], y[1]);
            lp.set_targets(&opt.targets());
            epochs_on_trial = 0;
            window.clear();
        }
        lp.step();
        epochs_on_trial += 1;
        if !opt.is_done() {
            if epochs_on_trial > CONVERGE_EPOCHS - SCORE_EPOCHS {
                window.push(lp.outputs().clone());
            }
            if epochs_on_trial >= CONVERGE_EPOCHS {
                let mut avg = Vector::zeros(2);
                for v in &window {
                    avg += v;
                }
                avg = avg.scale(1.0 / window.len().max(1) as f64);
                if let Some(next) = opt.observe(avg[0], avg[1]) {
                    lp.set_targets(&next);
                } else {
                    // Hold the best point found.
                    lp.set_targets(&opt.targets());
                }
                window.clear();
                epochs_on_trial = 0;
            }
        }
    }
    stats_from(lp.plant(), metric)
}

/// Runs a self-contained governor (Baseline, or the Heuristic's own
/// optimization search) until the instruction budget completes.
pub fn run_self_directed(
    gov: &mut dyn Governor,
    plant: &mut Processor,
    metric: Metric,
    budget_g: f64,
) -> OptimizationStats {
    let mut lp = EpochLoop::new(gov, plant);
    lp.prime();
    while lp.plant().totals().instructions_g < budget_g {
        lp.step();
    }
    stats_from(lp.plant(), metric)
}

fn stats_from(plant: &Processor, metric: Metric) -> OptimizationStats {
    let t = plant.totals();
    OptimizationStats {
        ed_product: t.energy_delay_product(metric.exponent() as u32),
        energy_j: t.energy_j,
        time_s: t.time_s,
        instructions_g: t.instructions_g,
    }
}

/// Convenience: epochs corresponding to a wall-clock duration.
pub fn epochs_for_ms(ms: f64) -> usize {
    ((ms * 1000.0) / EPOCH_US).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;
    use mimo_core::governor::FixedGovernor;
    use mimo_sim::InputSet;

    #[test]
    fn epochs_for_ms_converts() {
        assert_eq!(epochs_for_ms(10.0), 200);
        assert_eq!(epochs_for_ms(0.05), 1);
    }

    #[test]
    fn epochs_for_ms_rounds_to_nearest_epoch() {
        // 50 µs epochs: durations land on the nearest epoch boundary, not
        // the floor. 74 µs → 1.48 epochs → 1; 76 µs → 1.52 → 2.
        assert_eq!(epochs_for_ms(0.074), 1);
        assert_eq!(epochs_for_ms(0.076), 2);
        // Half-way rounds away from zero (f64::round semantics).
        assert_eq!(epochs_for_ms(0.075), 2);
        // Sub-half-epoch durations vanish rather than inflating to 1.
        assert_eq!(epochs_for_ms(0.02), 0);
        assert_eq!(epochs_for_ms(0.0), 0);
    }

    #[test]
    fn observed_tracking_matches_plain_and_fills_sink() {
        use mimo_core::telemetry::{TelemetryConfig, TelemetrySink};

        let targets = Vector::from_slice(&[2.5, 2.0]);
        let mut gov = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
        let mut plant = setup::plant("namd", InputSet::FreqCache, 1);
        let plain = run_tracking(&mut gov, &mut plant, &targets, 120, false);

        let mut gov2 = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
        let mut plant2 = setup::plant("namd", InputSet::FreqCache, 1);
        let sink = TelemetrySink::new(&TelemetryConfig::trace(64));
        let (observed, sink) =
            run_tracking_observed(&mut gov2, &mut plant2, &targets, 120, false, sink);

        // Observation must not perturb the run.
        assert_eq!(plain, observed);
        assert_eq!(sink.metrics.epochs, 120);
        assert_eq!(sink.trace.len(), 64);
        assert_eq!(sink.trace.dropped(), 120 - 64);
        let summary = sink.summary.expect("finish() delivered a run summary");
        assert_eq!(summary.epochs, 120);
        assert_eq!(summary.fault_epochs, 0);
    }

    #[test]
    fn tracking_zero_epochs_returns_zeroed_stats() {
        // Regression: summarize() used to underflow on an empty history.
        let mut gov = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
        let mut plant = setup::plant("namd", InputSet::FreqCache, 1);
        let targets = Vector::from_slice(&[2.5, 2.0]);
        let stats = run_tracking(&mut gov, &mut plant, &targets, 0, true);
        assert_eq!(stats.avg_err_pct, vec![0.0, 0.0]);
        assert_eq!(stats.final_outputs, Vector::zeros(2));
        assert_eq!(stats.steady_epoch, vec![None, None]);
        assert_eq!(stats.trace, Some(vec![]));
    }

    #[test]
    fn tracking_single_epoch_is_finite() {
        let mut gov = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
        let mut plant = setup::plant("astar", InputSet::FreqCache, 2);
        let targets = Vector::from_slice(&[2.5, 2.0]);
        let stats = run_tracking(&mut gov, &mut plant, &targets, 1, false);
        assert!(stats.avg_err_pct.iter().all(|e| e.is_finite()));
        // The single observed epoch is the "final quarter".
        assert!(stats.final_outputs[0] > 0.0);
        assert!(stats.final_outputs[1] > 0.0);
    }

    #[test]
    fn tracking_shorter_than_warmup_still_averages() {
        // Fewer epochs than WARMUP_EPOCHS: the warm-up window shrinks to a
        // quarter of the run instead of swallowing it whole.
        let mut gov = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
        let mut plant = setup::plant("namd", InputSet::FreqCache, 3);
        let targets = Vector::from_slice(&[2.5, 2.0]);
        let stats = run_tracking(&mut gov, &mut plant, &targets, 40, false);
        assert!(stats.avg_err_pct.iter().all(|e| e.is_finite() && *e > 0.0));
    }

    #[test]
    fn tracking_with_fixed_governor_reports_errors() {
        let mut gov = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
        let mut plant = setup::plant("namd", InputSet::FreqCache, 1);
        let targets = Vector::from_slice(&[2.5, 2.0]);
        let stats = run_tracking(&mut gov, &mut plant, &targets, 800, false);
        assert_eq!(stats.avg_err_pct.len(), 2);
        assert!(stats.avg_err_pct[0] > 0.0);
        // Fixed inputs settle immediately.
        assert_eq!(stats.steady_epoch, vec![Some(0), Some(0)]);
        assert!(stats.trace.is_none());
    }

    #[test]
    fn mimo_tracking_beats_fixed_on_namd() {
        let mut mimo = setup::mimo_governor(InputSet::FreqCache, 2).unwrap();
        let mut plant = setup::plant("namd", InputSet::FreqCache, 3);
        let targets = Vector::from_slice(&[2.5, 2.0]);
        let mimo_stats = run_tracking(&mut mimo, &mut plant, &targets, 3000, false);

        let mut fixed = FixedGovernor::new(Vector::from_slice(&[1.0, 4.0]));
        let mut plant2 = setup::plant("namd", InputSet::FreqCache, 3);
        let fixed_stats = run_tracking(&mut fixed, &mut plant2, &targets, 3000, false);

        let mimo_total: f64 = mimo_stats.avg_err_pct.iter().sum();
        let fixed_total: f64 = fixed_stats.avg_err_pct.iter().sum();
        assert!(
            mimo_total < fixed_total,
            "MIMO {mimo_stats:?} vs fixed {fixed_stats:?}"
        );
        // MIMO should track power well on a responsive app.
        assert!(
            mimo_stats.avg_err_pct[1] < 12.0,
            "power error {:?}",
            mimo_stats.avg_err_pct
        );
    }

    #[test]
    fn schedule_switches_references() {
        let mut gov = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
        let mut plant = setup::plant("astar", InputSet::FreqCache, 4);
        let schedule = vec![
            ReferenceStep {
                epoch: 0,
                targets: Vector::from_slice(&[2.0, 1.5]),
            },
            ReferenceStep {
                epoch: 50,
                targets: Vector::from_slice(&[1.0, 1.0]),
            },
        ];
        let trace = run_schedule(&mut gov, &mut plant, &schedule, 100);
        assert_eq!(trace.outputs.len(), 100);
        assert_eq!(trace.references[0][0], 2.0);
        assert_eq!(trace.references[99][0], 1.0);
        assert!(trace.ips_tracking_error_pct() >= 0.0);
    }

    #[test]
    fn schedule_error_is_defined_for_degenerate_references() {
        // A zero or non-finite reference must not turn the mean into
        // NaN/inf; each such epoch contributes a bounded error instead.
        let mk = |ips: f64| ScheduleTrace {
            outputs: vec![Vector::from_slice(&[2.0, 1.0]); 4],
            references: vec![Vector::from_slice(&[ips, 1.0]); 4],
        };
        assert_eq!(mk(0.0).ips_tracking_error_pct(), 100.0);
        assert_eq!(mk(f64::NAN).ips_tracking_error_pct(), 100.0);
        assert_eq!(mk(f64::INFINITY).ips_tracking_error_pct(), 100.0);
        // Healthy references are unchanged: |2 − 4| / 4 = 50%.
        assert_eq!(mk(4.0).ips_tracking_error_pct(), 50.0);
        // An empty trace reports zero error, not 0/0.
        let empty = ScheduleTrace {
            outputs: vec![],
            references: vec![],
        };
        assert_eq!(empty.ips_tracking_error_pct(), 0.0);
    }

    #[test]
    fn optimization_run_consumes_budget() {
        let mut gov = setup::mimo_governor(InputSet::FreqCache, 5).unwrap();
        let mut plant = setup::plant("gamess", InputSet::FreqCache, 6);
        let stats = run_optimization(&mut gov, &mut plant, Metric::EnergyDelay, 0.05);
        assert!(stats.instructions_g >= 0.05);
        assert!(stats.ed_product.is_finite() && stats.ed_product > 0.0);
        assert!(stats.energy_j > 0.0 && stats.time_s > 0.0);
    }
}
