//! Compile-time copies of the checked-in `specs/` files.
//!
//! Subcommand aliases (`mimo-exp fig06`, …) resolve to these embedded
//! copies so the binary behaves identically from any working directory;
//! a test pins each embedded copy byte-identical to its on-disk file, so
//! the alias and `mimo-exp run specs/fig06.toml` can never drift apart.

/// One embedded spec: CLI alias, repo-relative path, and file contents.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddedSpec {
    /// Subcommand alias resolving to this spec (`fig06`, `tab-opt`, …).
    pub alias: &'static str,
    /// Repo-relative path of the on-disk copy.
    pub path: &'static str,
    /// The spec's TOML text.
    pub text: &'static str,
}

macro_rules! embed {
    ($alias:literal, $file:literal) => {
        EmbeddedSpec {
            alias: $alias,
            path: concat!("specs/", $file),
            text: include_str!(concat!("../../../../specs/", $file)),
        }
    };
}

/// Every checked-in spec, in `run all` order (the two spec-only
/// scenarios last).
pub const EMBEDDED: [EmbeddedSpec; 14] = [
    embed!("fig06", "fig06.toml"),
    embed!("fig07", "fig07.toml"),
    embed!("fig08", "fig08.toml"),
    embed!("fig09", "fig09.toml"),
    embed!("fig10", "fig10.toml"),
    embed!("fig11", "fig11.toml"),
    embed!("fig12", "fig12.toml"),
    embed!("tab-opt", "tab_opt.toml"),
    embed!("fleet-scale", "fleet_scale.toml"),
    embed!("cluster-scale", "cluster_scale.toml"),
    embed!("fault-sweep", "fault_sweep.toml"),
    embed!("phase-step", "phase_step.toml"),
    embed!("cluster-fault", "cluster_fault.toml"),
    embed!("cluster-bank", "cluster_bank.toml"),
];

/// Looks an embedded spec up by its CLI alias.
pub fn by_alias(alias: &str) -> Option<&'static EmbeddedSpec> {
    EMBEDDED.iter().find(|s| s.alias == alias)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_embedded_spec_parses_and_matches_its_alias() {
        for e in &EMBEDDED {
            let spec =
                crate::spec::parse_str(e.text).unwrap_or_else(|err| panic!("{}: {err}", e.path));
            // The spec's name is its file stem, so alias ↔ file ↔ name
            // stay mechanically connected.
            assert_eq!(spec.name, e.alias.replace('-', "_"), "{}", e.path);
        }
    }
}
