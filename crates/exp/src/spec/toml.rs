//! A line-tracked TOML reader producing the [`serde`] stub's
//! [`serde::de::Value`] tree.
//!
//! The container vendors no `toml` crate, so `mimo-exp run` parses specs
//! with this reader instead. It covers the subset the spec schema uses —
//! bare keys, `[table]` / `[[array-of-tables]]` headers (dotted), basic
//! strings, integers, floats, booleans, inline arrays (multiline) and
//! inline tables — and every node remembers its 1-based source line, so
//! type errors downstream read `spec.toml:12: cluster.chips: expected
//! integer, got string "four"`.
//!
//! Intentionally *not* covered (each fails with a pointed error rather
//! than silently misparsing): dotted keys in assignments, quoted keys,
//! literal/multiline strings, and datetimes.

use serde::de::{join, DeError, DeResult, Spanned, Table, Value};

/// Parses a TOML document into a line-spanned table.
///
/// # Errors
///
/// [`DeError`] with the offending line (and key path, for duplicate-key
/// and header errors) on any syntax error.
pub fn parse(src: &str) -> DeResult<Table> {
    Parser::new(src).document()
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

/// Where the next `key = value` lands: a dotted table path, entered via
/// `[path]` (the table itself) or `[[path]]` (its newest element).
#[derive(Default)]
struct Cursor {
    path: Vec<String>,
}

impl Parser {
    fn new(src: &str) -> Self {
        Parser {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
        }
    }

    fn document(&mut self) -> DeResult<Table> {
        let mut root = Table::new();
        // Dotted paths of headers seen explicitly, so `[a]` twice is a
        // duplicate but `[a.b]` after `[a]` (or vice versa) is fine.
        let mut defined: Vec<String> = Vec::new();
        let mut cursor = Cursor::default();
        loop {
            self.skip_trivia();
            match self.peek() {
                None => return Ok(root),
                Some('[') => self.header(&mut root, &mut defined, &mut cursor)?,
                Some(_) => {
                    let (key, value) = self.key_value()?;
                    let target = navigate(&mut root, &cursor.path)?;
                    let line = value.line;
                    if !target.insert(&key, value) {
                        let path = join(&cursor.path.join("."), &key);
                        return Err(DeError::at(path, line, "duplicate key"));
                    }
                    self.end_of_line("after the value")?;
                }
            }
        }
    }

    /// Parses `[a.b]` or `[[a.b]]` and repoints the cursor.
    fn header(
        &mut self,
        root: &mut Table,
        defined: &mut Vec<String>,
        cursor: &mut Cursor,
    ) -> DeResult<()> {
        let line = self.line;
        self.bump(); // '['
        let is_array = self.peek() == Some('[');
        if is_array {
            self.bump();
        }
        let mut path = Vec::new();
        loop {
            self.skip_inline_ws();
            path.push(self.bare_key()?);
            self.skip_inline_ws();
            match self.peek() {
                Some('.') => {
                    self.bump();
                }
                Some(']') => {
                    self.bump();
                    break;
                }
                _ => {
                    return Err(DeError::at_line(
                        self.line,
                        "expected '.' or ']' in a table header",
                    ))
                }
            }
        }
        if is_array {
            match self.peek() {
                Some(']') => {
                    self.bump();
                }
                _ => {
                    return Err(DeError::at_line(
                        self.line,
                        "an array-of-tables header needs a closing ']]'",
                    ))
                }
            }
        }
        self.end_of_line("after the table header")?;

        let dotted = path.join(".");
        let (parent_path, last) = path.split_at(path.len() - 1);
        let parent = navigate(root, parent_path)?;
        let last = &last[0];
        if is_array {
            match parent.get_mut(last) {
                None => {
                    let elem = Spanned::new(Value::Table(Table::new()), line);
                    let arr = Spanned::new(Value::Array(vec![elem]), line);
                    parent.insert(last, arr);
                }
                Some(node) => match &mut node.value {
                    Value::Array(items) => {
                        items.push(Spanned::new(Value::Table(Table::new()), line))
                    }
                    _ => {
                        return Err(DeError::at(
                            dotted,
                            line,
                            format!(
                                "[[...]] conflicts with an earlier {}",
                                node.value.type_name()
                            ),
                        ))
                    }
                },
            }
        } else {
            match parent.get_mut(last) {
                None => {
                    parent.insert(last, Spanned::new(Value::Table(Table::new()), line));
                }
                // Re-opening is only legal for tables created implicitly
                // by a deeper header (`[a.b]` before `[a]`).
                Some(node) => match &node.value {
                    Value::Table(_) if !defined.contains(&dotted) => {}
                    Value::Table(_) => return Err(DeError::at(dotted, line, "duplicate table")),
                    other => {
                        return Err(DeError::at(
                            dotted,
                            line,
                            format!("[...] conflicts with an earlier {}", other.type_name()),
                        ))
                    }
                },
            }
            defined.push(dotted);
        }
        cursor.path = path;
        Ok(())
    }

    fn key_value(&mut self) -> DeResult<(String, Spanned)> {
        let key = self.bare_key()?;
        self.skip_inline_ws();
        match self.peek() {
            Some('=') => {
                self.bump();
            }
            Some('.') => {
                return Err(DeError::at_line(
                    self.line,
                    format!("dotted key {key:?}.…: not supported; use a [section] header"),
                ))
            }
            _ => {
                return Err(DeError::at_line(
                    self.line,
                    format!("expected '=' after key {key:?}"),
                ))
            }
        }
        self.skip_inline_ws();
        let value = self.value()?;
        Ok((key, value))
    }

    fn value(&mut self) -> DeResult<Spanned> {
        let line = self.line;
        match self.peek() {
            Some('"') => Ok(Spanned::new(Value::Str(self.basic_string()?), line)),
            Some('\'') => Err(DeError::at_line(
                line,
                "literal strings ('...') are not supported; use \"...\"",
            )),
            Some('[') => self.array(),
            Some('{') => self.inline_table(),
            Some(c) if c == 't' || c == 'f' => {
                let word = self.bare_word();
                match word.as_str() {
                    "true" => Ok(Spanned::new(Value::Bool(true), line)),
                    "false" => Ok(Spanned::new(Value::Bool(false), line)),
                    w => Err(DeError::at_line(
                        line,
                        format!("expected a value, got {w:?}"),
                    )),
                }
            }
            Some(c) if c == '+' || c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(DeError::at_line(
                line,
                format!(
                    "expected a value (string, number, boolean, array, or inline table), got {c:?}"
                ),
            )),
            None => Err(DeError::at_line(line, "expected a value, got end of file")),
        }
    }

    fn array(&mut self) -> DeResult<Spanned> {
        let line = self.line;
        self.bump(); // '['
        let mut items = Vec::new();
        loop {
            self.skip_trivia(); // arrays may span lines
            match self.peek() {
                Some(']') => {
                    self.bump();
                    return Ok(Spanned::new(Value::Array(items), line));
                }
                None => return Err(DeError::at_line(self.line, "unterminated array")),
                Some(_) => {
                    items.push(self.value()?);
                    self.skip_trivia();
                    match self.peek() {
                        Some(',') => {
                            self.bump();
                        }
                        Some(']') => {}
                        _ => {
                            return Err(DeError::at_line(
                                self.line,
                                "expected ',' or ']' in an array",
                            ))
                        }
                    }
                }
            }
        }
    }

    fn inline_table(&mut self) -> DeResult<Spanned> {
        let line = self.line;
        self.bump(); // '{'
        let mut table = Table::new();
        self.skip_inline_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Spanned::new(Value::Table(table), line));
        }
        loop {
            self.skip_inline_ws();
            let (key, value) = self.key_value()?;
            let vline = value.line;
            if !table.insert(&key, value) {
                return Err(DeError::at(key, vline, "duplicate key in inline table"));
            }
            self.skip_inline_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some('}') => {
                    self.bump();
                    return Ok(Spanned::new(Value::Table(table), line));
                }
                _ => {
                    return Err(DeError::at_line(
                        self.line,
                        "expected ',' or '}' in an inline table",
                    ))
                }
            }
        }
    }

    fn number(&mut self) -> DeResult<Spanned> {
        let line = self.line;
        let mut text = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' | '+' | '-' | '_' => text.push(c),
                '.' | 'e' | 'E' => {
                    is_float = true;
                    text.push(c);
                }
                _ => break,
            }
            self.bump();
        }
        let clean: String = text.chars().filter(|&c| c != '_').collect();
        if is_float {
            clean
                .parse::<f64>()
                .map(|f| Spanned::new(Value::Float(f), line))
                .map_err(|_| DeError::at_line(line, format!("invalid float {text:?}")))
        } else {
            clean
                .parse::<i64>()
                .map(|i| Spanned::new(Value::Int(i), line))
                .map_err(|_| DeError::at_line(line, format!("invalid integer {text:?}")))
        }
    }

    fn basic_string(&mut self) -> DeResult<String> {
        let line = self.line;
        self.bump(); // opening '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(DeError::at_line(line, "unterminated string")),
                Some('\n') => {
                    return Err(DeError::at_line(
                        line,
                        "strings may not span lines (multiline \"\"\" is not supported)",
                    ))
                }
                Some('"') => {
                    self.bump();
                    return Ok(out);
                }
                Some('\\') => {
                    self.bump();
                    let esc = self
                        .peek()
                        .ok_or_else(|| DeError::at_line(line, "unterminated string"))?;
                    self.bump();
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d =
                                    self.peek().and_then(|c| c.to_digit(16)).ok_or_else(|| {
                                        DeError::at_line(line, "\\u needs four hex digits")
                                    })?;
                                self.bump();
                                code = code * 16 + d;
                            }
                            out.push(char::from_u32(code).ok_or_else(|| {
                                DeError::at_line(line, format!("\\u{code:04x} is not a character"))
                            })?);
                        }
                        c => {
                            return Err(DeError::at_line(
                                line,
                                format!("unknown string escape \\{c}"),
                            ))
                        }
                    }
                }
                Some(c) => {
                    self.bump();
                    out.push(c);
                }
            }
        }
    }

    fn bare_key(&mut self) -> DeResult<String> {
        if self.peek() == Some('"') {
            return Err(DeError::at_line(
                self.line,
                "quoted keys are not supported; use bare keys (A-Z a-z 0-9 _ -)",
            ));
        }
        let word = self.bare_word();
        if word.is_empty() {
            return Err(DeError::at_line(
                self.line,
                format!(
                    "expected a key, got {:?}",
                    self.peek().map(String::from).unwrap_or_default()
                ),
            ));
        }
        Ok(word)
    }

    fn bare_word(&mut self) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out
    }

    /// Requires nothing but trailing whitespace/comment on the line.
    fn end_of_line(&mut self, what: &str) -> DeResult<()> {
        self.skip_inline_ws();
        if self.peek() == Some('#') {
            while let Some(c) = self.peek() {
                if c == '\n' {
                    break;
                }
                self.bump();
            }
        }
        match self.peek() {
            None => Ok(()),
            Some('\n') => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(DeError::at_line(
                self.line,
                format!("expected end of line {what}, got {c:?}"),
            )),
        }
    }

    /// Skips spaces, tabs, CRs, newlines, and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(' ' | '\t' | '\r' | '\n') => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r')) {
            self.bump();
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) {
        if self.peek() == Some('\n') {
            self.line += 1;
        }
        self.pos += 1;
    }
}

/// Walks `path` down from `root`, creating intermediate tables; a
/// segment holding an array-of-tables descends into its newest element.
fn navigate<'t>(root: &'t mut Table, path: &[String]) -> DeResult<&'t mut Table> {
    let mut current = root;
    for (i, seg) in path.iter().enumerate() {
        if current.get(seg).is_none() {
            current.insert(seg, Spanned::new(Value::Table(Table::new()), 0));
        }
        let node = current.get_mut(seg).expect("just inserted");
        let line = node.line;
        current = match &mut node.value {
            Value::Table(t) => t,
            Value::Array(items) => match items.last_mut().map(|s| &mut s.value) {
                Some(Value::Table(t)) => t,
                _ => {
                    return Err(DeError::at(
                        path[..=i].join("."),
                        line,
                        "cannot extend a non-table array with a header",
                    ))
                }
            },
            other => {
                return Err(DeError::at(
                    path[..=i].join("."),
                    line,
                    format!("key already holds a {}", other.type_name()),
                ))
            }
        };
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'t>(t: &'t Table, key: &str) -> &'t Spanned {
        t.get(key).unwrap_or_else(|| panic!("missing key {key}"))
    }

    #[test]
    fn scalars_parse_with_lines() {
        let doc = parse("a = 1\nb = 1.5\nc = \"hi\"\nd = true\n").unwrap();
        assert_eq!(get(&doc, "a").value, Value::Int(1));
        assert_eq!(get(&doc, "a").line, 1);
        assert_eq!(get(&doc, "b").value, Value::Float(1.5));
        assert_eq!(get(&doc, "c").value, Value::Str("hi".into()));
        assert_eq!(get(&doc, "c").line, 3);
        assert_eq!(get(&doc, "d").value, Value::Bool(true));
    }

    #[test]
    fn tables_and_arrays_of_tables_nest() {
        let doc = parse("top = 0\n[a.b]\nx = 1\n[[a.items]]\ny = 1\n[[a.items]]\ny = 2\n").unwrap();
        let a = match &get(&doc, "a").value {
            Value::Table(t) => t,
            v => panic!("{v:?}"),
        };
        let b = match &get(a, "b").value {
            Value::Table(t) => t,
            v => panic!("{v:?}"),
        };
        assert_eq!(get(b, "x").value, Value::Int(1));
        let items = match &get(a, "items").value {
            Value::Array(v) => v,
            v => panic!("{v:?}"),
        };
        assert_eq!(items.len(), 2);
        match &items[1].value {
            Value::Table(t) => assert_eq!(get(t, "y").value, Value::Int(2)),
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn multiline_arrays_and_inline_tables() {
        let doc = parse("xs = [\n  1, # one\n  2,\n]\nt = { k = \"v\", n = 3 }\n").unwrap();
        match &get(&doc, "xs").value {
            Value::Array(v) => {
                assert_eq!(v.len(), 2);
                assert_eq!(v[1].line, 3);
            }
            v => panic!("{v:?}"),
        }
        match &get(&doc, "t").value {
            Value::Table(t) => assert_eq!(get(t, "n").value, Value::Int(3)),
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn errors_carry_the_line() {
        let err = parse("a = 1\nb = \n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!((err.line, err.path.as_str()), (2, "a"));
        let err = parse("[t]\nx = 1\n[t]\n").unwrap_err();
        assert_eq!((err.line, err.path.as_str()), (3, "t"));
        let err = parse("a = \"unterminated\n").unwrap_err();
        assert!(err.msg.contains("span lines"), "{}", err.msg);
        let err = parse("a.b = 1\n").unwrap_err();
        assert!(err.msg.contains("section"), "{}", err.msg);
        let err = parse("x = 1 y = 2\n").unwrap_err();
        assert!(err.msg.contains("end of line"), "{}", err.msg);
    }

    #[test]
    fn negative_and_underscored_numbers() {
        let doc = parse("a = -3\nb = 1_000\nc = -2.5e2\n").unwrap();
        assert_eq!(get(&doc, "a").value, Value::Int(-3));
        assert_eq!(get(&doc, "b").value, Value::Int(1000));
        assert_eq!(get(&doc, "c").value, Value::Float(-250.0));
    }

    #[test]
    fn reopening_an_implicit_parent_is_fine() {
        let doc = parse("[a.b]\nx = 1\n[a]\ny = 2\n").unwrap();
        let a = match &get(&doc, "a").value {
            Value::Table(t) => t,
            v => panic!("{v:?}"),
        };
        assert!(a.get("y").is_some() && a.get("b").is_some());
    }
}
