//! The `mimo-exp schema` reference text.
//!
//! One authoritative, greppable description of every spec key, its type,
//! its default, and which scenario kinds accept it. EXPERIMENTS.md
//! carries the narrative version; this is the terminal one.

/// The full schema reference printed by `mimo-exp schema`.
pub const SCHEMA_TEXT: &str = "\
mimo-exp spec schema (version 1)
================================

A spec is a TOML file: a top-level header, one scenario section named by
`kind`, and an optional [asserts] section. Run with
`mimo-exp run <spec.toml>`; check without running via
`mimo-exp validate <spec.toml|dir>`.

Top level
---------
schema      integer, required       must be 1
name        string,  required       [A-Za-z0-9_-]+; non-paper kinds write <name>.csv
kind        string,  required       paper | loop | fleet | cluster

[paper]                             (kind = \"paper\")
----------------------------------------------------
experiment  string, required        fig06 fig07 fig08 fig09 fig10 fig11 fig12
                                    tab-opt fleet-scale cluster-scale fault-sweep
  Dispatches to the named experiment exactly as its subcommand alias
  would — same code path, byte-identical CSVs.

[loop]                              (kind = \"loop\")
----------------------------------------------------
app         string,  required       any catalog workload
input_set   string,  default freq_cache     freq_cache | freq_cache_rob
governor    string,  default mimo           mimo | decoupled
seed        integer, default 2016
epochs      integer, required       --epochs overrides
[[loop.phases]]                     at least one; strictly increasing
  epoch     integer, required       first phase must start at 0
  ips       float,   required       BIPS target from this epoch on
  power     float,   required       watts target from this epoch on
  The runner drives one governed core through the piecewise-constant
  reference schedule and writes one summary row per phase.

[fleet]                             (kind = \"fleet\")
----------------------------------------------------
cores       integer, required
workers     integer, default 1      results byte-identical at any value
epochs      integer, required       --epochs overrides
seed        integer, default 2016
power_cap   float,   default nominal (1.2 W/core)
policy      string,  default runtime's     uniform | proportional | priority
input_set   string,  default freq_cache
apps        array of strings, default built-in mix; assigned round-robin
targets     array [ips, power], default runtime's
fault_rate  float,   default 0      transient faults per core-epoch
banked      bool,    default true   SoA governor banks; false forces the
                                    per-cell path (results identical)
[[fleet.faults]]                    scheduled fault plan
  core      integer, required
  kind      string,  required       stuck_sensor | nan_measurement |
                                    actuator_stuck_at | power_spike
  channel   integer                 stuck_sensor/nan_measurement only
  input     integer                 actuator_stuck_at only
  value     float                   actuator_stuck_at only
  factor    float                   power_spike only
  start     integer, required       first faulted epoch
  duration  integer, default permanent
[fleet.llc]                         shared-LLC contention (default off)
  total_ways   integer, required
  sensitivity  float, default model's

[cluster]                           (kind = \"cluster\")
----------------------------------------------------
chips           integer, required
cores_per_chip  integer, required
shards          integer, default 1  --shards overrides; results identical at any value
epochs / seed / power_cap / policy / input_set / apps / targets /
fault_rate / llc / banked           as for [fleet] (power_cap caps the cluster;
                                    policy sets each chip's arbiter)
[[cluster.faults]]                  as for [fleet.faults] plus:
  chip      integer, required       which chip the fault lands on

[asserts]                           all optional
----------------------------------------------------
csv = [\"a.csv\", ...]               files the run must produce
[[asserts.digest]]                  fleet/cluster kinds only
  epochs    integer, required       checked only at exactly this epoch count
  value     string,  required       16 hex digits (the stats digest)
[[asserts.tracking_error]]          loop/fleet/cluster kinds
  output    string,  required       ips | power
  max_pct   float,   required       mean tracking error ceiling, percent
  epochs    integer, optional       epoch gate, as for digest
[asserts.quarantined]               fleet/cluster kinds
  min       integer, default 0
  max       integer, default unbounded
  epochs    integer, optional       epoch gate
[asserts.invariant]                 re-run and byte-compare the CSVs
  jobs      array of integers       paper/loop/fleet: worker counts to compare
  shards    array of integers       cluster (and cluster-scale): shard counts

Epoch-gated assertions (digest, and any tracking_error/quarantined with
an `epochs` key) are skipped — not failed — when --epochs changes the
run length, so CI smoke runs at --epochs 50 stay green.
";
