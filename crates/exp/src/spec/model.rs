//! The typed scenario model: [`RunSpec`] and everything under it.
//!
//! A spec file deserializes into this tree via [`FromValue`] (the vendored
//! serde stub's working counterpart of `Deserialize`); every extraction
//! error carries the dotted key path and source line, which `mimo-exp run`
//! prefixes with the file name. Semantic checks that need more than one
//! key (phase ordering, assertion/kind compatibility, bounds) live in
//! [`RunSpec::validate`] so parse errors and validation errors read the
//! same way.

use mimo_fleet::ArbitrationPolicy;
use mimo_sim::fault::{FaultKind, FaultSpec};
use mimo_sim::InputSet;
use serde::de::{join, DeError, DeResult, FromValue, Spanned, Table, Value};

/// Current spec schema version; bump on incompatible format changes.
pub const SCHEMA_VERSION: i64 = 1;

/// A complete declarative scenario: what to run plus what to expect.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Scenario name; CSVs from non-paper kinds land in `<name>.csv`.
    pub name: String,
    /// What to run.
    pub scenario: Scenario,
    /// Expected-outcome assertions, checked after the run.
    pub asserts: Asserts,
}

/// The four scenario kinds, keyed by the top-level `kind` string.
#[derive(Debug, Clone, PartialEq)]
pub enum Scenario {
    /// `kind = "paper"`: one of the named paper experiments, byte-for-byte
    /// the run the matching subcommand performs.
    Paper(PaperExperiment),
    /// `kind = "loop"`: a single governed core driven through a
    /// piecewise-constant reference schedule.
    Loop(LoopSpec),
    /// `kind = "fleet"`: one chip, N cores under a shared power arbiter.
    Fleet(FleetSpec),
    /// `kind = "cluster"`: chips × cores under a cluster-level arbiter.
    Cluster(ClusterSpec),
}

impl Scenario {
    /// The `kind` string this scenario was declared with.
    pub fn kind(&self) -> &'static str {
        match self {
            Scenario::Paper(_) => "paper",
            Scenario::Loop(_) => "loop",
            Scenario::Fleet(_) => "fleet",
            Scenario::Cluster(_) => "cluster",
        }
    }
}

/// The named paper experiments `kind = "paper"` can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperExperiment {
    /// Figure 6 / Table V: weight-choice sensitivity.
    Fig06,
    /// Figure 7: model error vs state dimension.
    Fig07,
    /// Figure 8: convergence under uncertainty guardbands.
    Fig08,
    /// Figure 9: E×D minimization, 2 inputs.
    Fig09,
    /// Figure 10: E×D minimization, 3 inputs.
    Fig10,
    /// Figure 11: tracking-error scatter.
    Fig11,
    /// Figure 12: time-varying (QoE/battery) tracking.
    Fig12,
    /// §VIII-F text: E and E×D² reductions.
    TabOpt,
    /// Fleet sizes × worker counts under one chip budget.
    FleetScale,
    /// Chips × cores-per-chip under one datacenter budget.
    ClusterScale,
    /// Fault rate × arbitration policy on a 16-core fleet.
    FaultSweep,
}

impl PaperExperiment {
    /// Every experiment, in the order `run all` executes them.
    pub const ALL: [PaperExperiment; 11] = [
        PaperExperiment::Fig06,
        PaperExperiment::Fig07,
        PaperExperiment::Fig08,
        PaperExperiment::Fig09,
        PaperExperiment::Fig10,
        PaperExperiment::Fig11,
        PaperExperiment::Fig12,
        PaperExperiment::TabOpt,
        PaperExperiment::FleetScale,
        PaperExperiment::ClusterScale,
        PaperExperiment::FaultSweep,
    ];

    /// The CLI-facing name (also the `experiment` key's vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            PaperExperiment::Fig06 => "fig06",
            PaperExperiment::Fig07 => "fig07",
            PaperExperiment::Fig08 => "fig08",
            PaperExperiment::Fig09 => "fig09",
            PaperExperiment::Fig10 => "fig10",
            PaperExperiment::Fig11 => "fig11",
            PaperExperiment::Fig12 => "fig12",
            PaperExperiment::TabOpt => "tab-opt",
            PaperExperiment::FleetScale => "fleet-scale",
            PaperExperiment::ClusterScale => "cluster-scale",
            PaperExperiment::FaultSweep => "fault-sweep",
        }
    }

    fn parse(v: &Spanned, path: &str) -> DeResult<Self> {
        let s = String::from_value(v, path)?;
        Self::ALL
            .into_iter()
            .find(|e| e.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Self::ALL.iter().map(|e| e.name()).collect();
                DeError::at(
                    path,
                    v.line,
                    format!(
                        "unknown experiment {s:?} (expected one of: {})",
                        names.join(", ")
                    ),
                )
            })
    }
}

/// `kind = "loop"`: one governed core, one reference schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSpec {
    /// Workload name (any catalog app).
    pub app: String,
    /// Actuator set (default `freq_cache`).
    pub input_set: InputSet,
    /// Governor (default `mimo`).
    pub governor: GovernorKind,
    /// Base RNG seed (default 2016).
    pub seed: u64,
    /// Epochs to run (`--epochs` overrides).
    pub epochs: usize,
    /// Piecewise-constant reference schedule, strictly increasing epochs
    /// starting at 0.
    pub phases: Vec<PhaseSpec>,
}

/// One step of a reference schedule: from `epoch` on, track
/// (`ips`, `power`).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// First epoch this reference is in force.
    pub epoch: usize,
    /// IPS target, BIPS.
    pub ips: f64,
    /// Power target, watts.
    pub power: f64,
}

/// Governors a loop scenario can install.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GovernorKind {
    /// The paper's MIMO LQG controller.
    Mimo,
    /// Per-channel decoupled SISO controllers.
    Decoupled,
}

/// `kind = "fleet"`: one chip under a shared power arbiter.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Cores on the chip.
    pub cores: usize,
    /// Worker threads (default 1; results are identical at any value).
    pub workers: usize,
    /// Epochs to run (`--epochs` overrides).
    pub epochs: usize,
    /// Base RNG seed (default 2016).
    pub seed: u64,
    /// Chip power cap, watts (default: the nominal 1.2 W/core budget).
    pub power_cap: Option<f64>,
    /// Arbitration policy (default: the runtime's default).
    pub policy: Option<ArbitrationPolicy>,
    /// Actuator set (default `freq_cache`).
    pub input_set: InputSet,
    /// Workload mix, assigned round-robin (default: the built-in mix).
    pub apps: Vec<String>,
    /// Per-core `[ips, power]` targets (default: the runtime's default).
    pub targets: Option<[f64; 2]>,
    /// Random transient-fault rate per core-epoch (default 0).
    pub fault_rate: f64,
    /// Scheduled fault plan.
    pub faults: Vec<CoreFault>,
    /// Shared-LLC contention model (default: off).
    pub llc: Option<LlcSpec>,
    /// Structure-of-arrays governor banks (default true; results are
    /// identical either way — `banked = false` forces the per-cell path).
    pub banked: bool,
}

/// `kind = "cluster"`: chips × cores under a cluster arbiter.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Chips in the cluster.
    pub chips: usize,
    /// Cores per chip.
    pub cores_per_chip: usize,
    /// Shard threads stepping chips (default 1; results are identical at
    /// any value, `--shards` overrides).
    pub shards: usize,
    /// Epochs to run (`--epochs` overrides).
    pub epochs: usize,
    /// Base RNG seed (default 2016).
    pub seed: u64,
    /// Cluster power cap, watts (default: the nominal budget).
    pub power_cap: Option<f64>,
    /// Per-chip arbitration policy (default: the runtime's default).
    pub policy: Option<ArbitrationPolicy>,
    /// Actuator set (default `freq_cache`).
    pub input_set: InputSet,
    /// Workload mix, assigned round-robin per chip (default: built-in).
    pub apps: Vec<String>,
    /// Per-core `[ips, power]` targets (default: the runtime's default).
    pub targets: Option<[f64; 2]>,
    /// Random transient-fault rate per core-epoch (default 0).
    pub fault_rate: f64,
    /// Scheduled fault plan (`chip` key required).
    pub faults: Vec<CoreFault>,
    /// Per-chip shared-LLC contention model (default: off).
    pub llc: Option<LlcSpec>,
    /// Structure-of-arrays governor banks on every chip (default true;
    /// results are identical either way).
    pub banked: bool,
}

/// One scheduled fault: which core (and chip, for clusters), what kind,
/// and when.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreFault {
    /// Chip index (cluster kind only; fleet faults leave it 0).
    pub chip: usize,
    /// Core index within the chip.
    pub core: usize,
    /// The injected fault window.
    pub spec: FaultSpec,
}

/// Shared-LLC contention knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct LlcSpec {
    /// Total cache ways shared by the chip's cores.
    pub total_ways: usize,
    /// Miss-penalty sensitivity (default: the model's default).
    pub sensitivity: Option<f64>,
}

// ---------------------------------------------------------------------------
// Assertions
// ---------------------------------------------------------------------------

/// Expected-outcome assertions, all optional.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Asserts {
    /// CSV files the run must produce (relative to the results dir).
    pub csv: Vec<String>,
    /// Golden digests, each gated on an exact epoch count.
    pub digest: Vec<DigestAssert>,
    /// Aggregate tracking-error ceilings.
    pub tracking_error: Vec<TrackingErrorAssert>,
    /// Bounds on quarantined cores (fleet/cluster kinds).
    pub quarantined: Option<QuarantinedAssert>,
    /// Byte-identity of CSV output across worker/shard counts.
    pub invariant: Option<InvariantAssert>,
}

/// A golden digest pin: checked only when the run's effective epoch count
/// equals `epochs` (so `--epochs 50` CI runs skip it instead of failing).
#[derive(Debug, Clone, PartialEq)]
pub struct DigestAssert {
    /// Epoch count the digest was recorded at.
    pub epochs: usize,
    /// Expected digest (16 hex digits).
    pub value: u64,
}

/// Output channels a tracking-error assertion can bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputChannel {
    /// Instruction throughput.
    Ips,
    /// Power.
    Power,
}

impl OutputChannel {
    /// Lower-case label, as written in specs.
    pub fn name(self) -> &'static str {
        match self {
            OutputChannel::Ips => "ips",
            OutputChannel::Power => "power",
        }
    }
}

/// Mean tracking error on `output` must stay at or under `max_pct`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackingErrorAssert {
    /// Which output channel.
    pub output: OutputChannel,
    /// Ceiling, percent.
    pub max_pct: f64,
    /// Optional epoch gate: when set, the bound is only checked at
    /// exactly this epoch count (so `--epochs 50` smoke runs skip it).
    pub epochs: Option<usize>,
}

/// Quarantined-core count must land in `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedAssert {
    /// Minimum quarantined cores (default 0).
    pub min: usize,
    /// Maximum quarantined cores (default unbounded).
    pub max: usize,
    /// Optional epoch gate (see [`TrackingErrorAssert::epochs`]).
    pub epochs: Option<usize>,
}

/// Re-run the scenario at each listed parallelism and require the
/// produced CSV bytes to be identical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InvariantAssert {
    /// Worker counts to compare (paper/loop/fleet kinds).
    pub jobs: Vec<usize>,
    /// Shard counts to compare (cluster kind, and `cluster-scale`).
    pub shards: Vec<usize>,
}

// ---------------------------------------------------------------------------
// FromValue impls
// ---------------------------------------------------------------------------

fn table<'v>(v: &'v Spanned, path: &str) -> DeResult<&'v Table> {
    match &v.value {
        Value::Table(t) => Ok(t),
        _ => Err(DeError::mismatch(path, v, "table")),
    }
}

fn parse_keyword<T: Copy>(v: &Spanned, path: &str, what: &str, opts: &[(&str, T)]) -> DeResult<T> {
    let s = String::from_value(v, path)?;
    opts.iter()
        .find(|(name, _)| *name == s)
        .map(|&(_, t)| t)
        .ok_or_else(|| {
            let names: Vec<&str> = opts.iter().map(|&(n, _)| n).collect();
            DeError::at(
                path,
                v.line,
                format!(
                    "unknown {what} {s:?} (expected one of: {})",
                    names.join(", ")
                ),
            )
        })
}

fn input_set(t: &Table, path: &str) -> DeResult<InputSet> {
    match t.get("input_set") {
        None => Ok(InputSet::FreqCache),
        Some(v) => parse_keyword(
            v,
            &join(path, "input_set"),
            "input set",
            &[
                ("freq_cache", InputSet::FreqCache),
                ("freq_cache_rob", InputSet::FreqCacheRob),
            ],
        ),
    }
}

fn policy(t: &Table, path: &str) -> DeResult<Option<ArbitrationPolicy>> {
    match t.get("policy") {
        None => Ok(None),
        Some(v) => parse_keyword(
            v,
            &join(path, "policy"),
            "policy",
            &[
                ("uniform", ArbitrationPolicy::Uniform),
                ("proportional", ArbitrationPolicy::Proportional),
                ("priority", ArbitrationPolicy::PriorityWeighted),
            ],
        )
        .map(Some),
    }
}

fn targets(t: &Table, path: &str) -> DeResult<Option<[f64; 2]>> {
    let pair: Option<Vec<f64>> = t.field_opt("targets", path)?;
    match pair {
        None => Ok(None),
        Some(v) if v.len() == 2 => Ok(Some([v[0], v[1]])),
        Some(v) => {
            let node = t.get("targets").expect("just read it");
            Err(DeError::at(
                join(path, "targets"),
                node.line,
                format!("targets needs exactly [ips, power], got {} items", v.len()),
            ))
        }
    }
}

impl FromValue for PhaseSpec {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        let t = table(v, path)?;
        t.deny_unknown(&["epoch", "ips", "power"], path)?;
        Ok(PhaseSpec {
            epoch: t.field("epoch", path, v.line)?,
            ips: t.field("ips", path, v.line)?,
            power: t.field("power", path, v.line)?,
        })
    }
}

impl FromValue for LlcSpec {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        let t = table(v, path)?;
        t.deny_unknown(&["total_ways", "sensitivity"], path)?;
        Ok(LlcSpec {
            total_ways: t.field("total_ways", path, v.line)?,
            sensitivity: t.field_opt("sensitivity", path)?,
        })
    }
}

/// Parses one `[[…faults]]` entry; `in_cluster` decides whether the
/// `chip` key is required or forbidden.
fn core_fault(v: &Spanned, path: &str, in_cluster: bool) -> DeResult<CoreFault> {
    let t = table(v, path)?;
    t.deny_unknown(
        &[
            "chip", "core", "kind", "channel", "input", "value", "factor", "start", "duration",
        ],
        path,
    )?;
    let chip = if in_cluster {
        t.field("chip", path, v.line)?
    } else if let Some(node) = t.get("chip") {
        return Err(DeError::at(
            join(path, "chip"),
            node.line,
            "chip is a cluster-kind key; fleet faults name only a core",
        ));
    } else {
        0
    };

    // Per-kind payload keys; anything from another kind's vocabulary is
    // caught by `only`.
    let kind_node = t
        .get("kind")
        .ok_or_else(|| DeError::at(join(path, "kind"), v.line, "missing required key"))?;
    let only = |allowed: &[&str]| -> DeResult<()> {
        for key in ["channel", "input", "value", "factor"] {
            if let Some(node) = t.get(key) {
                if !allowed.contains(&key) {
                    return Err(DeError::at(
                        join(path, key),
                        node.line,
                        format!(
                            "not a key of this fault kind (takes: {})",
                            allowed.join(", ")
                        ),
                    ));
                }
            }
        }
        Ok(())
    };
    let kind_name = String::from_value(kind_node, &join(path, "kind"))?;
    let kind = match kind_name.as_str() {
        "stuck_sensor" => {
            only(&["channel"])?;
            FaultKind::StuckSensor {
                channel: t.field("channel", path, v.line)?,
            }
        }
        "nan_measurement" => {
            only(&["channel"])?;
            FaultKind::NanMeasurement {
                channel: t.field("channel", path, v.line)?,
            }
        }
        "actuator_stuck_at" => {
            only(&["input", "value"])?;
            FaultKind::ActuatorStuckAt {
                input: t.field("input", path, v.line)?,
                value: t.field("value", path, v.line)?,
            }
        }
        "power_spike" => {
            only(&["factor"])?;
            FaultKind::PowerSpike {
                factor: t.field("factor", path, v.line)?,
            }
        }
        other => {
            return Err(DeError::at(
                join(path, "kind"),
                kind_node.line,
                format!(
                    "unknown fault kind {other:?} (expected one of: stuck_sensor, \
                     nan_measurement, actuator_stuck_at, power_spike)"
                ),
            ))
        }
    };
    Ok(CoreFault {
        chip,
        core: t.field("core", path, v.line)?,
        spec: FaultSpec {
            kind,
            start_epoch: t.field("start", path, v.line)?,
            duration: t.field_or("duration", path, u64::MAX)?,
        },
    })
}

fn core_faults(t: &Table, path: &str, in_cluster: bool) -> DeResult<Vec<CoreFault>> {
    match t.get("faults") {
        None => Ok(Vec::new()),
        Some(v) => match &v.value {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    core_fault(item, &format!("{}[{i}]", join(path, "faults")), in_cluster)
                })
                .collect(),
            _ => Err(DeError::mismatch(
                &join(path, "faults"),
                v,
                "array of tables",
            )),
        },
    }
}

impl FromValue for LoopSpec {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        let t = table(v, path)?;
        t.deny_unknown(
            &["app", "input_set", "governor", "seed", "epochs", "phases"],
            path,
        )?;
        let governor = match t.get("governor") {
            None => GovernorKind::Mimo,
            Some(g) => parse_keyword(
                g,
                &join(path, "governor"),
                "governor",
                &[
                    ("mimo", GovernorKind::Mimo),
                    ("decoupled", GovernorKind::Decoupled),
                ],
            )?,
        };
        Ok(LoopSpec {
            app: t.field("app", path, v.line)?,
            input_set: input_set(t, path)?,
            governor,
            seed: t.field_or("seed", path, 2016)?,
            epochs: t.field("epochs", path, v.line)?,
            phases: t.field("phases", path, v.line)?,
        })
    }
}

impl FromValue for FleetSpec {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        let t = table(v, path)?;
        t.deny_unknown(
            &[
                "cores",
                "workers",
                "epochs",
                "seed",
                "power_cap",
                "policy",
                "input_set",
                "apps",
                "targets",
                "fault_rate",
                "faults",
                "llc",
                "banked",
            ],
            path,
        )?;
        Ok(FleetSpec {
            cores: t.field("cores", path, v.line)?,
            workers: t.field_or("workers", path, 1)?,
            epochs: t.field("epochs", path, v.line)?,
            seed: t.field_or("seed", path, 2016)?,
            power_cap: t.field_opt("power_cap", path)?,
            policy: policy(t, path)?,
            input_set: input_set(t, path)?,
            apps: t.field_or("apps", path, Vec::new())?,
            targets: targets(t, path)?,
            fault_rate: t.field_or("fault_rate", path, 0.0)?,
            faults: core_faults(t, path, false)?,
            llc: t.field_opt("llc", path)?,
            banked: t.field_or("banked", path, true)?,
        })
    }
}

impl FromValue for ClusterSpec {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        let t = table(v, path)?;
        t.deny_unknown(
            &[
                "chips",
                "cores_per_chip",
                "shards",
                "epochs",
                "seed",
                "power_cap",
                "policy",
                "input_set",
                "apps",
                "targets",
                "fault_rate",
                "faults",
                "llc",
                "banked",
            ],
            path,
        )?;
        Ok(ClusterSpec {
            chips: t.field("chips", path, v.line)?,
            cores_per_chip: t.field("cores_per_chip", path, v.line)?,
            shards: t.field_or("shards", path, 1)?,
            epochs: t.field("epochs", path, v.line)?,
            seed: t.field_or("seed", path, 2016)?,
            power_cap: t.field_opt("power_cap", path)?,
            policy: policy(t, path)?,
            input_set: input_set(t, path)?,
            apps: t.field_or("apps", path, Vec::new())?,
            targets: targets(t, path)?,
            fault_rate: t.field_or("fault_rate", path, 0.0)?,
            faults: core_faults(t, path, true)?,
            llc: t.field_opt("llc", path)?,
            banked: t.field_or("banked", path, true)?,
        })
    }
}

impl FromValue for DigestAssert {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        let t = table(v, path)?;
        t.deny_unknown(&["epochs", "value"], path)?;
        let hex: String = t.field("value", path, v.line)?;
        let value = u64::from_str_radix(&hex, 16).map_err(|_| {
            let node = t.get("value").expect("just read it");
            DeError::at(
                join(path, "value"),
                node.line,
                format!("expected 16 hex digits, got {hex:?}"),
            )
        })?;
        Ok(DigestAssert {
            epochs: t.field("epochs", path, v.line)?,
            value,
        })
    }
}

impl FromValue for TrackingErrorAssert {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        let t = table(v, path)?;
        t.deny_unknown(&["output", "max_pct", "epochs"], path)?;
        let node = t
            .get("output")
            .ok_or_else(|| DeError::at(join(path, "output"), v.line, "missing required key"))?;
        Ok(TrackingErrorAssert {
            output: parse_keyword(
                node,
                &join(path, "output"),
                "output channel",
                &[("ips", OutputChannel::Ips), ("power", OutputChannel::Power)],
            )?,
            max_pct: t.field("max_pct", path, v.line)?,
            epochs: t.field_opt("epochs", path)?,
        })
    }
}

impl FromValue for QuarantinedAssert {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        let t = table(v, path)?;
        t.deny_unknown(&["min", "max", "epochs"], path)?;
        Ok(QuarantinedAssert {
            min: t.field_or("min", path, 0)?,
            max: t.field_or("max", path, usize::MAX)?,
            epochs: t.field_opt("epochs", path)?,
        })
    }
}

impl FromValue for InvariantAssert {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        let t = table(v, path)?;
        t.deny_unknown(&["jobs", "shards"], path)?;
        Ok(InvariantAssert {
            jobs: t.field_or("jobs", path, Vec::new())?,
            shards: t.field_or("shards", path, Vec::new())?,
        })
    }
}

impl FromValue for Asserts {
    fn from_value(v: &Spanned, path: &str) -> DeResult<Self> {
        let t = table(v, path)?;
        t.deny_unknown(
            &[
                "csv",
                "digest",
                "tracking_error",
                "quarantined",
                "invariant",
            ],
            path,
        )?;
        Ok(Asserts {
            csv: t.field_or("csv", path, Vec::new())?,
            digest: t.field_or("digest", path, Vec::new())?,
            tracking_error: t.field_or("tracking_error", path, Vec::new())?,
            quarantined: t.field_opt("quarantined", path)?,
            invariant: t.field_opt("invariant", path)?,
        })
    }
}

impl RunSpec {
    /// Extracts a spec from a parsed document and runs
    /// [semantic validation](Self::validate).
    ///
    /// # Errors
    ///
    /// [`DeError`] naming the offending key and line.
    pub fn from_table(root: &Table) -> DeResult<Self> {
        root.deny_unknown(
            &[
                "schema", "name", "kind", "paper", "loop", "fleet", "cluster", "asserts",
            ],
            "",
        )?;
        let schema: i64 = root.field("schema", "", 1)?;
        if schema != SCHEMA_VERSION {
            let node = root.get("schema").expect("just read it");
            return Err(DeError::at(
                "schema",
                node.line,
                format!("unsupported schema version {schema} (this build reads {SCHEMA_VERSION})"),
            ));
        }
        let name: String = root.field("name", "", 1)?;
        let kind_node = root
            .get("kind")
            .ok_or_else(|| DeError::at("kind", 1, "missing required key"))?;
        let kind = String::from_value(kind_node, "kind")?;
        let section = |key: &str| -> DeResult<&Spanned> {
            root.get(key).ok_or_else(|| {
                DeError::at(
                    key,
                    kind_node.line,
                    format!("kind = {kind:?} needs a [{key}] section"),
                )
            })
        };
        let scenario = match kind.as_str() {
            "paper" => {
                let node = section("paper")?;
                let t = table(node, "paper")?;
                t.deny_unknown(&["experiment"], "paper")?;
                let exp = t.get("experiment").ok_or_else(|| {
                    DeError::at("paper.experiment", node.line, "missing required key")
                })?;
                Scenario::Paper(PaperExperiment::parse(exp, "paper.experiment")?)
            }
            "loop" => Scenario::Loop(LoopSpec::from_value(section("loop")?, "loop")?),
            "fleet" => Scenario::Fleet(FleetSpec::from_value(section("fleet")?, "fleet")?),
            "cluster" => {
                Scenario::Cluster(ClusterSpec::from_value(section("cluster")?, "cluster")?)
            }
            other => {
                return Err(DeError::at(
                    "kind",
                    kind_node.line,
                    format!(
                        "unknown kind {other:?} (expected one of: paper, loop, fleet, cluster)"
                    ),
                ))
            }
        };
        // A spec may only carry the section its kind names.
        for key in ["paper", "loop", "fleet", "cluster"] {
            if key != scenario.kind() {
                if let Some(node) = root.get(key) {
                    return Err(DeError::at(
                        key,
                        node.line,
                        format!(
                            "[{key}] section conflicts with kind = {:?}",
                            scenario.kind()
                        ),
                    ));
                }
            }
        }
        let asserts = match root.get("asserts") {
            None => Asserts::default(),
            Some(v) => Asserts::from_value(v, "asserts")?,
        };
        let spec = RunSpec {
            name,
            scenario,
            asserts,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Cross-key semantic checks: shapes, phase ordering, and
    /// assertion/kind compatibility. Lowering (and the runtime configs'
    /// own `validate`) covers app names and topology bounds.
    ///
    /// # Errors
    ///
    /// [`DeError`] naming the offending key (line 0: the check spans keys).
    pub fn validate(&self) -> DeResult<()> {
        let bad = |path: &str, msg: String| Err(DeError::at(path, 0, msg));
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return bad(
                "name",
                format!(
                    "name {:?} must be non-empty [A-Za-z0-9_-] (it names the CSV)",
                    self.name
                ),
            );
        }
        match &self.scenario {
            Scenario::Paper(_) => {}
            Scenario::Loop(l) => {
                if l.epochs == 0 {
                    return bad("loop.epochs", "must be at least 1".into());
                }
                if l.phases.is_empty() {
                    return bad("loop.phases", "needs at least one [[loop.phases]]".into());
                }
                if l.phases[0].epoch != 0 {
                    return bad(
                        "loop.phases[0].epoch",
                        "the first phase must start at epoch 0".into(),
                    );
                }
                for (i, pair) in l.phases.windows(2).enumerate() {
                    if pair[1].epoch <= pair[0].epoch {
                        return bad(
                            &format!("loop.phases[{}].epoch", i + 1),
                            format!(
                                "phase epochs must be strictly increasing (got {} after {})",
                                pair[1].epoch, pair[0].epoch
                            ),
                        );
                    }
                }
                for (i, p) in l.phases.iter().enumerate() {
                    if !(p.ips.is_finite() && p.ips > 0.0 && p.power.is_finite() && p.power > 0.0) {
                        return bad(
                            &format!("loop.phases[{i}]"),
                            "ips and power targets must be finite and positive".into(),
                        );
                    }
                }
            }
            Scenario::Fleet(f) => {
                if f.workers == 0 {
                    return bad("fleet.workers", "must be at least 1".into());
                }
            }
            Scenario::Cluster(c) => {
                if c.shards == 0 {
                    return bad("cluster.shards", "must be at least 1".into());
                }
            }
        }
        let kind = self.scenario.kind();
        let summary_kinds = matches!(self.scenario, Scenario::Fleet(_) | Scenario::Cluster(_));
        if !self.asserts.digest.is_empty() && !summary_kinds {
            return bad(
                "asserts.digest",
                format!("digest assertions need kind fleet or cluster, not {kind}"),
            );
        }
        if self.asserts.quarantined.is_some() && !summary_kinds {
            return bad(
                "asserts.quarantined",
                format!("quarantined assertions need kind fleet or cluster, not {kind}"),
            );
        }
        if let Some(q) = &self.asserts.quarantined {
            if q.min > q.max {
                return bad(
                    "asserts.quarantined",
                    format!("min {} > max {}", q.min, q.max),
                );
            }
        }
        if !self.asserts.tracking_error.is_empty() && matches!(self.scenario, Scenario::Paper(_)) {
            return bad(
                "asserts.tracking_error",
                "tracking_error assertions need kind loop, fleet, or cluster".into(),
            );
        }
        if let Some(inv) = &self.asserts.invariant {
            if inv.jobs.is_empty() && inv.shards.is_empty() {
                return bad(
                    "asserts.invariant",
                    "needs a jobs = [...] or shards = [...] list".into(),
                );
            }
            if inv.jobs.contains(&0) || inv.shards.contains(&0) {
                return bad("asserts.invariant", "counts must be at least 1".into());
            }
            let shards_ok = matches!(self.scenario, Scenario::Cluster(_))
                || matches!(
                    self.scenario,
                    Scenario::Paper(PaperExperiment::ClusterScale)
                );
            if !inv.shards.is_empty() && !shards_ok {
                return bad(
                    "asserts.invariant.shards",
                    format!("shards invariance needs kind cluster (or cluster-scale), not {kind}"),
                );
            }
            if !inv.jobs.is_empty() && matches!(self.scenario, Scenario::Cluster(_)) {
                return bad(
                    "asserts.invariant.jobs",
                    "a cluster parallelizes over shards, not jobs — use shards = [...]".into(),
                );
            }
        }
        for (i, a) in self.asserts.tracking_error.iter().enumerate() {
            if !(a.max_pct.is_finite() && a.max_pct >= 0.0) {
                return bad(
                    &format!("asserts.tracking_error[{i}].max_pct"),
                    "must be finite and non-negative".into(),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::toml;

    fn parse(src: &str) -> DeResult<RunSpec> {
        RunSpec::from_table(&toml::parse(src)?)
    }

    #[test]
    fn paper_spec_parses() {
        let spec = parse(
            "schema = 1\nname = \"fig06\"\nkind = \"paper\"\n\
             [paper]\nexperiment = \"fig06\"\n\
             [asserts]\ncsv = [\"fig06_weights.csv\"]\n",
        )
        .unwrap();
        assert_eq!(spec.scenario, Scenario::Paper(PaperExperiment::Fig06));
        assert_eq!(spec.asserts.csv, vec!["fig06_weights.csv"]);
    }

    #[test]
    fn loop_spec_parses_with_phases() {
        let spec = parse(
            "schema = 1\nname = \"phase\"\nkind = \"loop\"\n\
             [loop]\napp = \"astar\"\nepochs = 100\n\
             [[loop.phases]]\nepoch = 0\nips = 3.0\npower = 1.9\n\
             [[loop.phases]]\nepoch = 50\nips = 2.0\npower = 1.2\n",
        )
        .unwrap();
        match spec.scenario {
            Scenario::Loop(l) => {
                assert_eq!(l.governor, GovernorKind::Mimo);
                assert_eq!(l.seed, 2016);
                assert_eq!(l.phases.len(), 2);
                assert_eq!(l.phases[1].epoch, 50);
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn cluster_spec_parses_faults() {
        let spec = parse(
            "schema = 1\nname = \"cf\"\nkind = \"cluster\"\n\
             [cluster]\nchips = 2\ncores_per_chip = 4\nepochs = 100\n\
             [[cluster.faults]]\nchip = 1\ncore = 2\nkind = \"nan_measurement\"\n\
             channel = 0\nstart = 20\n\
             [asserts.quarantined]\nmin = 1\nmax = 1\n",
        )
        .unwrap();
        match &spec.scenario {
            Scenario::Cluster(c) => {
                assert_eq!(c.faults.len(), 1);
                assert_eq!(c.faults[0].chip, 1);
                assert_eq!(c.faults[0].spec.duration, u64::MAX);
            }
            s => panic!("{s:?}"),
        }
        assert_eq!(
            spec.asserts.quarantined,
            Some(QuarantinedAssert {
                min: 1,
                max: 1,
                epochs: None
            })
        );
    }

    #[test]
    fn wrong_kind_section_is_rejected() {
        let err = parse(
            "schema = 1\nname = \"x\"\nkind = \"paper\"\n[paper]\nexperiment = \"fig06\"\n\
             [fleet]\ncores = 4\nepochs = 10\n",
        )
        .unwrap_err();
        assert!(err.msg.contains("conflicts with kind"), "{err}");
    }

    #[test]
    fn unknown_kind_and_experiment_are_rejected() {
        let err = parse("schema = 1\nname = \"x\"\nkind = \"magic\"\n").unwrap_err();
        assert!(err.msg.contains("unknown kind"), "{err}");
        let err =
            parse("schema = 1\nname = \"x\"\nkind = \"paper\"\n[paper]\nexperiment = \"fig99\"\n")
                .unwrap_err();
        assert_eq!(err.path, "paper.experiment");
        assert_eq!(err.line, 5);
    }

    #[test]
    fn phase_ordering_is_validated() {
        let err = parse(
            "schema = 1\nname = \"x\"\nkind = \"loop\"\n[loop]\napp = \"astar\"\nepochs = 10\n\
             [[loop.phases]]\nepoch = 5\nips = 1.0\npower = 1.0\n",
        )
        .unwrap_err();
        assert!(err.msg.contains("start at epoch 0"), "{err}");
    }

    #[test]
    fn assertion_kind_compatibility() {
        let err = parse(
            "schema = 1\nname = \"x\"\nkind = \"paper\"\n[paper]\nexperiment = \"fig06\"\n\
             [asserts.quarantined]\nmin = 1\n",
        )
        .unwrap_err();
        assert!(err.msg.contains("fleet or cluster"), "{err}");
        let err = parse(
            "schema = 1\nname = \"x\"\nkind = \"fleet\"\n[fleet]\ncores = 4\nepochs = 10\n\
             [asserts.invariant]\nshards = [1, 2]\n",
        )
        .unwrap_err();
        assert!(err.path.contains("invariant"), "{err}");
    }

    #[test]
    fn fault_kind_payload_keys_are_checked() {
        let err = parse(
            "schema = 1\nname = \"x\"\nkind = \"fleet\"\n[fleet]\ncores = 4\nepochs = 10\n\
             [[fleet.faults]]\ncore = 1\nkind = \"power_spike\"\nchannel = 0\nstart = 5\n",
        )
        .unwrap_err();
        assert_eq!(err.path, "fleet.faults[0].channel");
        assert!(err.msg.contains("factor"), "{err}");
    }

    #[test]
    fn digest_value_is_hex() {
        let err = parse(
            "schema = 1\nname = \"x\"\nkind = \"fleet\"\n[fleet]\ncores = 4\nepochs = 10\n\
             [[asserts.digest]]\nepochs = 10\nvalue = \"zznothex\"\n",
        )
        .unwrap_err();
        assert_eq!(err.path, "asserts.digest[0].value");
    }
}
