//! Lowering: [`RunSpec`] scenarios onto the runtime's own builders.
//!
//! The spec layer adds no execution machinery of its own — a fleet spec
//! becomes a [`FleetConfig`], a cluster spec a [`ClusterConfig`], a loop
//! spec a reference schedule for the epoch-loop drivers — so a spec-driven
//! run is the *same* run the builder-driven code path performs, and the
//! runtime configs' own `validate` covers topology bounds and app names.

use mimo_core::engine::ReferenceStep;
use mimo_fleet::{ClusterConfig, FleetConfig};
use mimo_linalg::Vector;
use mimo_sim::llc::LlcConfig;
use serde::de::{DeError, DeResult};

use super::model::{ClusterSpec, FleetSpec, LlcSpec, LoopSpec};

impl LlcSpec {
    fn lower(&self, cores: usize) -> LlcConfig {
        let mut llc = LlcConfig::for_cores(cores).total_ways(self.total_ways);
        if let Some(s) = self.sensitivity {
            llc = llc.sensitivity(s);
        }
        llc
    }
}

impl FleetSpec {
    /// Builds the [`FleetConfig`] this spec describes and runs the
    /// runtime's own validation, so `mimo-exp validate` rejects the same
    /// specs `run` would.
    ///
    /// # Errors
    ///
    /// [`DeError`] under the `fleet` key path when the runtime rejects
    /// the configuration (bad topology, unknown app, …).
    pub fn lower(&self, epochs_override: Option<usize>) -> DeResult<FleetConfig> {
        let mut cfg = FleetConfig::new(self.cores)
            .workers(self.workers)
            .epochs(epochs_override.unwrap_or(self.epochs))
            .seed(self.seed)
            .input_set(self.input_set)
            .apps(self.apps.clone())
            .fault_rate(self.fault_rate)
            .banked(self.banked);
        if let Some(cap) = self.power_cap {
            cfg = cfg.power_cap(cap);
        }
        if let Some(policy) = self.policy {
            cfg = cfg.policy(policy);
        }
        if let Some(t) = self.targets {
            cfg = cfg.base_targets(t);
        }
        if let Some(llc) = &self.llc {
            cfg = cfg.llc_contention(llc.lower(self.cores));
        }
        for fault in &self.faults {
            cfg = cfg.core_fault(fault.core, fault.spec);
        }
        cfg.validate()
            .map_err(|e| DeError::at("fleet", 0, e.to_string()))?;
        Ok(cfg)
    }
}

impl ClusterSpec {
    /// Builds the [`ClusterConfig`] this spec describes; see
    /// [`FleetSpec::lower`] for the validation contract. `shards_override`
    /// carries the CLI `--shards` flag.
    ///
    /// # Errors
    ///
    /// [`DeError`] under the `cluster` key path on runtime rejection.
    pub fn lower(
        &self,
        epochs_override: Option<usize>,
        shards_override: Option<usize>,
    ) -> DeResult<ClusterConfig> {
        let mut cfg = ClusterConfig::new(self.chips, self.cores_per_chip)
            .shards(shards_override.unwrap_or(self.shards))
            .epochs(epochs_override.unwrap_or(self.epochs))
            .seed(self.seed)
            .input_set(self.input_set)
            .apps(self.apps.clone())
            .fault_rate(self.fault_rate)
            .banked(self.banked);
        if let Some(cap) = self.power_cap {
            cfg = cfg.power_cap(cap);
        }
        if let Some(policy) = self.policy {
            cfg = cfg.chip_policy(policy);
        }
        if let Some(t) = self.targets {
            cfg = cfg.base_targets(t);
        }
        if let Some(llc) = &self.llc {
            cfg = cfg.llc_contention(llc.lower(self.cores_per_chip));
        }
        for fault in &self.faults {
            if fault.chip >= self.chips {
                return Err(DeError::at(
                    "cluster.faults",
                    0,
                    format!(
                        "fault names chip {} but the cluster has {}",
                        fault.chip, self.chips
                    ),
                ));
            }
            cfg = cfg.core_fault(fault.chip, fault.core, fault.spec);
        }
        cfg.validate()
            .map_err(|e| DeError::at("cluster", 0, e.to_string()))?;
        Ok(cfg)
    }
}

impl LoopSpec {
    /// The reference schedule this spec's phases describe.
    pub fn schedule(&self) -> Vec<ReferenceStep> {
        self.phases
            .iter()
            .map(|p| ReferenceStep {
                epoch: p.epoch,
                targets: Vector::from_slice(&[p.ips, p.power]),
            })
            .collect()
    }

    /// Validates the workload name against the catalog (the loop kind
    /// bypasses `FleetConfig`, which would otherwise do this).
    ///
    /// # Errors
    ///
    /// [`DeError`] at `loop.app` for an unknown workload.
    pub fn check_app(&self) -> DeResult<()> {
        crate::setup::try_plant(&self.app, self.input_set, self.seed)
            .map(drop)
            .map_err(|e| DeError::at("loop.app", 0, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::super::model::{CoreFault, PhaseSpec};
    use super::*;
    use mimo_fleet::ArbitrationPolicy;
    use mimo_sim::fault::{FaultKind, FaultSpec};
    use mimo_sim::InputSet;

    fn fleet_spec() -> FleetSpec {
        FleetSpec {
            cores: 4,
            workers: 2,
            epochs: 100,
            seed: 7,
            power_cap: Some(4.0),
            policy: Some(ArbitrationPolicy::Uniform),
            input_set: InputSet::FreqCache,
            apps: vec!["astar".into()],
            targets: Some([2.5, 1.5]),
            fault_rate: 0.0,
            faults: vec![],
            llc: Some(LlcSpec {
                total_ways: 16,
                sensitivity: None,
            }),
            banked: true,
        }
    }

    #[test]
    fn fleet_lowers_onto_the_builder() {
        let cfg = fleet_spec().lower(None).unwrap();
        assert_eq!(cfg.n_cores, 4);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.chip_power_cap_w, 4.0);
        assert_eq!(cfg.policy, ArbitrationPolicy::Uniform);
        assert_eq!(cfg.base_targets, [2.5, 1.5]);
        assert_eq!(cfg.llc.unwrap().total_ways, 16);
        // The epochs override wins over the spec's own count.
        assert_eq!(fleet_spec().lower(Some(9)).unwrap().epochs, 9);
    }

    #[test]
    fn fleet_defaults_stay_the_runtime_defaults() {
        let mut spec = fleet_spec();
        spec.power_cap = None;
        spec.policy = None;
        spec.targets = None;
        spec.llc = None;
        spec.apps = vec![];
        let cfg = spec.lower(None).unwrap();
        let default = FleetConfig::new(4);
        assert_eq!(cfg.chip_power_cap_w, default.chip_power_cap_w);
        assert_eq!(cfg.policy, default.policy);
        assert_eq!(cfg.base_targets, default.base_targets);
        assert_eq!(cfg.llc, None);
    }

    #[test]
    fn unknown_app_fails_at_lowering() {
        let mut spec = fleet_spec();
        spec.apps = vec!["no-such-app".into()];
        let err = spec.lower(None).unwrap_err();
        assert_eq!(err.path, "fleet");
        assert!(err.msg.contains("no-such-app"), "{err}");
    }

    #[test]
    fn cluster_fault_chip_bound_is_checked() {
        let spec = ClusterSpec {
            chips: 2,
            cores_per_chip: 2,
            shards: 1,
            epochs: 50,
            seed: 1,
            power_cap: None,
            policy: None,
            input_set: InputSet::FreqCache,
            apps: vec![],
            targets: None,
            fault_rate: 0.0,
            faults: vec![CoreFault {
                chip: 5,
                core: 0,
                spec: FaultSpec {
                    kind: FaultKind::PowerSpike { factor: 3.0 },
                    start_epoch: 0,
                    duration: 1,
                },
            }],
            llc: None,
            banked: true,
        };
        let err = spec.lower(None, None).unwrap_err();
        assert!(err.msg.contains("chip 5"), "{err}");
    }

    #[test]
    fn loop_schedule_and_app_check() {
        let spec = LoopSpec {
            app: "astar".into(),
            input_set: InputSet::FreqCache,
            governor: super::super::model::GovernorKind::Mimo,
            seed: 1,
            epochs: 10,
            phases: vec![
                PhaseSpec {
                    epoch: 0,
                    ips: 3.0,
                    power: 1.9,
                },
                PhaseSpec {
                    epoch: 5,
                    ips: 2.0,
                    power: 1.2,
                },
            ],
        };
        spec.check_app().unwrap();
        let sched = spec.schedule();
        assert_eq!(sched.len(), 2);
        assert_eq!(sched[1].epoch, 5);
        assert_eq!(sched[1].targets[1], 1.2);
        let mut bad = spec;
        bad.app = "not-an-app".into();
        assert_eq!(bad.check_app().unwrap_err().path, "loop.app");
    }
}
