//! Executes a [`RunSpec`] and checks its assertions.
//!
//! Paper scenarios dispatch to the exact `experiments::*` functions the
//! subcommands always ran — including each subcommand's post-run checks
//! and paper-comparison summaries — so a spec-driven `fig06` and the
//! `fig06` alias are the same run producing the same bytes. Loop, fleet,
//! and cluster scenarios lower onto the epoch-loop drivers and the
//! fleet/cluster runtimes, then write a deterministic `<name>.csv`
//! summary (no worker/shard columns, so the file is byte-identical at any
//! parallelism — that is what `asserts.invariant` diffs).

use mimo_core::engine::rel_tracking_error;
use mimo_core::governor::{Governor, MimoGovernor};
use mimo_core::optimizer::Metric;
use mimo_core::telemetry::TelemetryConfig;
use mimo_sim::InputSet;

use crate::experiments::{self, ExpConfig};
use crate::report::{self, ResultsDir};
use crate::runner::run_schedule;
use crate::{setup, spec};

use super::model::{GovernorKind, OutputChannel, PaperExperiment, RunSpec, Scenario};

/// Ring capacity per core when `--trace` is on: enough to keep every
/// epoch of a CI-sized sweep and the recent tail of a full one.
const TRACE_CAPACITY: usize = 256;

/// CLI flags that override what a spec declares.
#[derive(Debug, Clone, Default)]
pub struct RunOverrides {
    /// `--epochs`: overrides the spec's epoch count (and gates off
    /// digest assertions recorded at a different count).
    pub epochs: Option<usize>,
    /// `--shards`: overrides a cluster spec's shard count.
    pub shards: Option<usize>,
    /// `--trace`: JSONL telemetry path (fault-sweep only).
    pub trace: Option<String>,
}

/// What a run produced, for assertion checking.
struct Outcome {
    /// Effective epoch count (gates digest assertions).
    epochs: usize,
    /// Deterministic stats digest (fleet/cluster kinds).
    digest: Option<u64>,
    /// Mean `[ips, power]` tracking error, percent.
    err_pct: Option<[f64; 2]>,
    /// Quarantined cores (fleet/cluster kinds).
    quarantined: Option<usize>,
    /// CSVs this run wrote (relative names), for invariance diffing.
    csvs: Vec<String>,
}

/// Runs `spec` under `cfg`, then checks every assertion; assertion
/// failures are collected (not short-circuited) so one run reports every
/// broken expectation.
///
/// # Errors
///
/// The run's own failure, or the newline-joined list of failed
/// assertions.
pub fn run_spec(cfg: &ExpConfig, spec: &RunSpec, ov: &RunOverrides) -> Result<(), String> {
    let outcome = execute(cfg, spec, ov)?;
    check_asserts(cfg, spec, ov, &outcome)
}

fn execute(cfg: &ExpConfig, spec: &RunSpec, ov: &RunOverrides) -> Result<Outcome, String> {
    match &spec.scenario {
        Scenario::Paper(exp) => run_paper(cfg, *exp, ov).map(|()| Outcome {
            epochs: cfg.tracking_epochs,
            digest: None,
            err_pct: None,
            quarantined: None,
            csvs: Vec::new(),
        }),
        Scenario::Loop(l) => run_loop(cfg, &spec.name, l, ov),
        Scenario::Fleet(f) => run_fleet(cfg, &spec.name, f, ov),
        Scenario::Cluster(c) => run_cluster(cfg, &spec.name, c, ov),
    }
}

// ---------------------------------------------------------------------------
// Paper kind — the subcommands' own run paths
// ---------------------------------------------------------------------------

/// Dispatches a paper experiment, byte-identical to its subcommand.
fn run_paper(cfg: &ExpConfig, exp: PaperExperiment, ov: &RunOverrides) -> Result<(), String> {
    match exp {
        PaperExperiment::Fig06 => experiments::fig06(cfg).map(drop).map_err(|e| e.to_string()),
        PaperExperiment::Fig07 => experiments::fig07(cfg).map(drop).map_err(|e| e.to_string()),
        PaperExperiment::Fig08 => experiments::fig08(cfg).map(drop).map_err(|e| e.to_string()),
        PaperExperiment::Fig09 => run_fig09(cfg),
        PaperExperiment::Fig10 => run_fig10(cfg),
        PaperExperiment::Fig11 => experiments::fig11(cfg).map(drop).map_err(|e| e.to_string()),
        PaperExperiment::Fig12 => experiments::fig12(cfg).map(drop).map_err(|e| e.to_string()),
        PaperExperiment::TabOpt => run_tab_opt(cfg),
        PaperExperiment::FleetScale => run_fleet_scale(cfg),
        PaperExperiment::ClusterScale => run_cluster_scale(cfg, ov.shards),
        PaperExperiment::FaultSweep => run_fault_sweep(cfg, ov.trace.as_deref()),
    }
}

fn run_fig09(cfg: &ExpConfig) -> Result<(), String> {
    let r = experiments::optimization_experiment(cfg, InputSet::FreqCache, Metric::EnergyDelay)
        .map_err(|e| e.to_string())?;
    println!("paper: MIMO -16%, Heuristic -4%, Decoupled +3% | measured: MIMO {:+.1}%, Heuristic {:+.1}%, Decoupled {:+.1}%",
        (r.avg_mimo - 1.0) * 100.0, (r.avg_heuristic - 1.0) * 100.0,
        (r.avg_decoupled.unwrap_or(f64::NAN) - 1.0) * 100.0);
    Ok(())
}

fn run_fig10(cfg: &ExpConfig) -> Result<(), String> {
    let r = experiments::optimization_experiment(cfg, InputSet::FreqCacheRob, Metric::EnergyDelay)
        .map_err(|e| e.to_string())?;
    println!(
        "paper: MIMO -25%, Heuristic -12% | measured: MIMO {:+.1}%, Heuristic {:+.1}%",
        (r.avg_mimo - 1.0) * 100.0,
        (r.avg_heuristic - 1.0) * 100.0
    );
    Ok(())
}

fn run_tab_opt(cfg: &ExpConfig) -> Result<(), String> {
    let e = experiments::optimization_experiment(cfg, InputSet::FreqCache, Metric::Energy)
        .map_err(|e| e.to_string())?;
    let ed2 =
        experiments::optimization_experiment(cfg, InputSet::FreqCache, Metric::EnergyDelaySquared)
            .map_err(|e| e.to_string())?;
    let dec = |r: &experiments::OptResult| (r.avg_decoupled.unwrap_or(f64::NAN) - 1.0) * 100.0;
    println!("E    — paper: MIMO -9%, Heuristic -1%, Decoupled 0% | measured: {:+.1}% / {:+.1}% / {:+.1}%",
        (e.avg_mimo-1.0)*100.0, (e.avg_heuristic-1.0)*100.0, dec(&e));
    println!("E×D² — paper: MIMO -18%, Heuristic -7%, Decoupled -4% | measured: {:+.1}% / {:+.1}% / {:+.1}%",
        (ed2.avg_mimo-1.0)*100.0, (ed2.avg_heuristic-1.0)*100.0, dec(&ed2));
    Ok(())
}

fn run_fleet_scale(cfg: &ExpConfig) -> Result<(), String> {
    let points = experiments::fleet_scale(cfg).map_err(|e| e.to_string())?;
    for pair in points.chunks(2) {
        if !pair.iter().all(|p| p.digest == pair[0].digest) {
            return Err(format!(
                "worker count changed results at N={}",
                pair[0].stats.n_cores
            ));
        }
    }
    println!("done; {}", cfg.results.join("fleet_scale.csv").display());
    Ok(())
}

fn run_cluster_scale(cfg: &ExpConfig, shards: Option<usize>) -> Result<(), String> {
    let points = experiments::cluster_scale(cfg, shards).map_err(|e| e.to_string())?;
    for p in &points {
        if !p.digests.iter().all(|&(_, d)| d == p.digests[0].1) {
            return Err(format!(
                "shard count changed results at {} chips x {} cores: {:?}",
                p.stats.n_chips,
                p.stats.total_cores / p.stats.n_chips.max(1),
                p.digests
            ));
        }
    }
    println!("done; {}", cfg.results.join("cluster_scale.csv").display());
    Ok(())
}

fn run_fault_sweep(cfg: &ExpConfig, trace: Option<&str>) -> Result<(), String> {
    let telemetry = trace.map(|_| TelemetryConfig::trace(TRACE_CAPACITY));
    let (points, tele) =
        experiments::fault_sweep_traced(cfg, telemetry).map_err(|e| e.to_string())?;
    for p in &points {
        if p.fault_rate == 0.0 {
            if p.stats.fault_epochs != 0 {
                return Err(format!("zero-rate run faulted ({})", p.stats.policy));
            }
            if p.stats.quarantined_cores != 0 {
                return Err(format!(
                    "zero-rate run quarantined cores ({})",
                    p.stats.policy
                ));
            }
        }
    }
    if let Some(path) = trace {
        let tele = tele.ok_or("--trace enabled telemetry but the sweep returned none")?;
        tele.save_jsonl(path)
            .map_err(|e| format!("write JSONL trace: {e}"))?;
        println!(
            "wrote {path} ({} cores, {} quarantines)",
            tele.per_core.len(),
            tele.quarantines().len()
        );
    }
    println!("done; {}", cfg.results.join("fault_sweep.csv").display());
    Ok(())
}

// ---------------------------------------------------------------------------
// Loop kind
// ---------------------------------------------------------------------------

fn run_loop(
    cfg: &ExpConfig,
    name: &str,
    l: &spec::LoopSpec,
    ov: &RunOverrides,
) -> Result<Outcome, String> {
    let epochs = ov.epochs.unwrap_or(l.epochs);
    let mut gov: Box<dyn Governor> = match l.governor {
        GovernorKind::Mimo => {
            let design = cfg
                .cache
                .design_mimo(l.input_set, l.seed)
                .map_err(|e| e.to_string())?;
            Box::new(MimoGovernor::new(design.controller.clone()))
        }
        GovernorKind::Decoupled => Box::new(
            cfg.cache
                .decoupled_governor(l.seed)
                .map_err(|e| e.to_string())?,
        ),
    };
    let mut plant = setup::try_plant(&l.app, l.input_set, l.seed).map_err(|e| e.to_string())?;
    let schedule = l.schedule();
    let trace = run_schedule(gov.as_mut(), &mut plant, &schedule, epochs);

    // Whole-run mean tracking error per channel.
    let mut total = [0.0f64; 2];
    for (y, r) in trace.outputs.iter().zip(&trace.references) {
        for (ch, acc) in total.iter_mut().enumerate() {
            *acc += rel_tracking_error(y[ch], r[ch]);
        }
    }
    let n = trace.outputs.len().max(1) as f64;
    let err_pct = [total[0] / n * 100.0, total[1] / n * 100.0];

    // Per-phase summary rows (only phases the run actually reached).
    let csv = format!("{name}.csv");
    if cfg.emit {
        let mut rows = Vec::new();
        for (i, phase) in l.phases.iter().enumerate() {
            if phase.epoch >= epochs {
                break;
            }
            let end = l
                .phases
                .get(i + 1)
                .map_or(epochs, |next| next.epoch.min(epochs));
            let span = &trace.outputs[phase.epoch..end];
            let mut mean = [0.0f64; 2];
            let mut err = [0.0f64; 2];
            for y in span {
                for ch in 0..2 {
                    mean[ch] += y[ch];
                    err[ch] +=
                        rel_tracking_error(y[ch], if ch == 0 { phase.ips } else { phase.power });
                }
            }
            let n = span.len().max(1) as f64;
            rows.push(vec![
                i.to_string(),
                phase.epoch.to_string(),
                end.to_string(),
                report::fmt(phase.ips, 4),
                report::fmt(phase.power, 4),
                report::fmt(mean[0] / n, 4),
                report::fmt(mean[1] / n, 4),
                report::fmt(err[0] / n * 100.0, 2),
                report::fmt(err[1] / n * 100.0, 2),
            ]);
        }
        let path = cfg
            .results
            .write_csv(
                &csv,
                &[
                    "phase",
                    "start_epoch",
                    "end_epoch",
                    "ref_ips",
                    "ref_power",
                    "mean_ips",
                    "mean_power",
                    "ips_err_pct",
                    "power_err_pct",
                ],
                &rows,
            )
            .map_err(|e| format!("write {csv}: {e}"))?;
        println!("wrote {}", path.display());
    }
    Ok(Outcome {
        epochs,
        digest: None,
        err_pct: Some(err_pct),
        quarantined: None,
        csvs: vec![csv],
    })
}

// ---------------------------------------------------------------------------
// Fleet / cluster kinds
// ---------------------------------------------------------------------------

fn run_fleet(
    cfg: &ExpConfig,
    name: &str,
    f: &spec::FleetSpec,
    ov: &RunOverrides,
) -> Result<Outcome, String> {
    let fleet_cfg = f.lower(ov.epochs).map_err(|e| e.to_string())?;
    let design = cfg
        .cache
        .design_mimo(f.input_set, f.seed)
        .map_err(|e| e.to_string())?;
    let epochs = fleet_cfg.epochs;
    let stats = mimo_fleet::FleetRunner::with_shared_controller(fleet_cfg, &design.controller)
        .and_then(mimo_fleet::FleetRunner::run)
        .map_err(|e| e.to_string())?;
    let digest = stats.digest();

    let csv = format!("{name}.csv");
    if cfg.emit {
        // No workers or wall-clock columns: the file must be byte-identical
        // at any worker count (asserts.invariant diffs it directly).
        let row = vec![
            stats.n_cores.to_string(),
            stats.epochs.to_string(),
            stats.policy.clone(),
            report::fmt(stats.agg_ips_err_pct, 2),
            report::fmt(stats.agg_power_err_pct, 2),
            report::fmt(stats.avg_chip_power_w, 3),
            report::fmt(stats.peak_chip_power_w, 3),
            report::fmt(stats.cap_violation_pct, 2),
            stats.quarantined_cores.to_string(),
            stats.fault_epochs.to_string(),
            format!("{digest:016x}"),
        ];
        let path = cfg
            .results
            .write_csv(
                &csv,
                &[
                    "n_cores",
                    "epochs",
                    "policy",
                    "ips_err_pct",
                    "power_err_pct",
                    "avg_chip_w",
                    "peak_chip_w",
                    "cap_violation_pct",
                    "quarantined",
                    "fault_epochs",
                    "digest",
                ],
                &[row],
            )
            .map_err(|e| format!("write {csv}: {e}"))?;
        println!("wrote {}", path.display());
    }
    Ok(Outcome {
        epochs,
        digest: Some(digest),
        err_pct: Some([stats.agg_ips_err_pct, stats.agg_power_err_pct]),
        quarantined: Some(stats.quarantined_cores),
        csvs: vec![csv],
    })
}

fn run_cluster(
    cfg: &ExpConfig,
    name: &str,
    c: &spec::ClusterSpec,
    ov: &RunOverrides,
) -> Result<Outcome, String> {
    let cluster_cfg = c.lower(ov.epochs, ov.shards).map_err(|e| e.to_string())?;
    let design = cfg
        .cache
        .design_mimo(c.input_set, c.seed)
        .map_err(|e| e.to_string())?;
    let epochs = cluster_cfg.epochs;
    let stats = mimo_fleet::ClusterRunner::with_shared_controller(cluster_cfg, &design.controller)
        .and_then(mimo_fleet::ClusterRunner::run)
        .map_err(|e| e.to_string())?;
    let digest = stats.digest();

    let csv = format!("{name}.csv");
    if cfg.emit {
        // No shards or wall-clock columns, for the same reason as fleet.
        let row = vec![
            stats.n_chips.to_string(),
            (stats.total_cores / stats.n_chips.max(1)).to_string(),
            stats.total_cores.to_string(),
            stats.epochs.to_string(),
            stats.exchange_period.to_string(),
            stats.exchanges.to_string(),
            stats.rebudget_moves.to_string(),
            report::fmt(stats.agg_ips_err_pct, 2),
            report::fmt(stats.agg_power_err_pct, 2),
            report::fmt(stats.avg_cluster_power_w, 3),
            report::fmt(stats.peak_window_power_w, 3),
            report::fmt(stats.cluster_cap_w, 3),
            stats.quarantined_cores.to_string(),
            stats.fault_epochs.to_string(),
            format!("{digest:016x}"),
        ];
        let path = cfg
            .results
            .write_csv(
                &csv,
                &[
                    "n_chips",
                    "cores_per_chip",
                    "total_cores",
                    "epochs",
                    "exchange_period",
                    "exchanges",
                    "rebudget_moves",
                    "ips_err_pct",
                    "power_err_pct",
                    "avg_cluster_w",
                    "peak_window_w",
                    "cluster_cap_w",
                    "quarantined",
                    "fault_epochs",
                    "digest",
                ],
                &[row],
            )
            .map_err(|e| format!("write {csv}: {e}"))?;
        println!("wrote {}", path.display());
    }
    Ok(Outcome {
        epochs,
        digest: Some(digest),
        err_pct: Some([stats.agg_ips_err_pct, stats.agg_power_err_pct]),
        quarantined: Some(stats.quarantined_cores),
        csvs: vec![csv],
    })
}

// ---------------------------------------------------------------------------
// Assertions
// ---------------------------------------------------------------------------

fn check_asserts(
    cfg: &ExpConfig,
    spec: &RunSpec,
    ov: &RunOverrides,
    outcome: &Outcome,
) -> Result<(), String> {
    let a = &spec.asserts;
    let mut failures = Vec::new();
    let mut checked = 0usize;
    let mut skipped = 0usize;

    for csv in &a.csv {
        checked += 1;
        let path = cfg.results.join(csv);
        if !path.is_file() {
            failures.push(format!("asserts.csv: {} was not produced", path.display()));
        }
    }

    for d in &a.digest {
        if outcome.epochs != d.epochs {
            skipped += 1; // recorded at a different epoch count
            continue;
        }
        checked += 1;
        match outcome.digest {
            Some(got) if got == d.value => {}
            Some(got) => failures.push(format!(
                "asserts.digest: expected {:016x} at {} epochs, got {got:016x}",
                d.value, d.epochs
            )),
            None => failures.push("asserts.digest: this scenario kind has no digest".into()),
        }
    }

    for t in &a.tracking_error {
        if t.epochs.is_some_and(|e| e != outcome.epochs) {
            skipped += 1;
            continue;
        }
        checked += 1;
        let ch = match t.output {
            OutputChannel::Ips => 0,
            OutputChannel::Power => 1,
        };
        match outcome.err_pct {
            Some(err) if err[ch] <= t.max_pct => {}
            Some(err) => failures.push(format!(
                "asserts.tracking_error: {} error {:.2}% exceeds max_pct {}",
                t.output.name(),
                err[ch],
                t.max_pct
            )),
            None => failures.push("asserts.tracking_error: this scenario kind reports none".into()),
        }
    }

    if let Some(q) = &a.quarantined {
        if q.epochs.is_some_and(|e| e != outcome.epochs) {
            skipped += 1;
        } else {
            checked += 1;
            match outcome.quarantined {
                Some(n) if n >= q.min && n <= q.max => {}
                Some(n) => failures.push(format!(
                    "asserts.quarantined: {n} quarantined cores outside [{}, {}]",
                    q.min,
                    if q.max == usize::MAX {
                        "inf".to_string()
                    } else {
                        q.max.to_string()
                    }
                )),
                None => {
                    failures.push("asserts.quarantined: this scenario kind reports none".into())
                }
            }
        }
    }

    if let Some(inv) = &a.invariant {
        match check_invariance(cfg, spec, ov, outcome, &inv.jobs, &inv.shards) {
            Ok(n) => checked += n,
            Err(msg) => failures.push(msg),
        }
    }

    if cfg.emit && failures.is_empty() {
        println!(
            "asserts: {checked} passed{}",
            if skipped > 0 {
                format!(", {skipped} skipped (epoch-gated)")
            } else {
                String::new()
            }
        );
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// Re-runs the scenario at each listed worker/shard count into a scratch
/// results directory and byte-compares the produced CSVs against the base
/// run's. Returns the number of comparisons performed.
fn check_invariance(
    cfg: &ExpConfig,
    spec: &RunSpec,
    ov: &RunOverrides,
    outcome: &Outcome,
    jobs: &[usize],
    shards: &[usize],
) -> Result<usize, String> {
    // Which files to diff: the scenario's own CSV plus any asserted ones.
    let mut files: Vec<&str> = outcome.csvs.iter().map(String::as_str).collect();
    for csv in &spec.asserts.csv {
        if !files.contains(&csv.as_str()) {
            files.push(csv);
        }
    }
    if files.is_empty() {
        return Err("asserts.invariant: nothing to diff — list the CSVs in asserts.csv".into());
    }

    let scratch_root = cfg.results.join(".spec-invariant");
    let mut comparisons = 0usize;
    let variants = jobs
        .iter()
        .map(|&n| ("jobs", n))
        .chain(shards.iter().map(|&n| ("shards", n)));
    let mut result = Ok(());
    'outer: for (param, n) in variants {
        let scratch = scratch_root.join(format!("{}-{param}{n}", spec.name));
        let mut cfg2 = cfg.clone();
        cfg2.results = ResultsDir::new(&scratch);
        let mut ov2 = ov.clone();
        let mut spec2 = spec.clone();
        match (&mut spec2.scenario, param) {
            (Scenario::Paper(_), "jobs") => cfg2.jobs = n,
            (Scenario::Paper(_), _) => ov2.shards = Some(n),
            (Scenario::Loop(_), _) => {} // single core; re-run checks run determinism
            (Scenario::Fleet(f), _) => f.workers = n.min(f.cores),
            (Scenario::Cluster(c), _) if param == "shards" => c.shards = n,
            (Scenario::Cluster(_), _) => {}
        }
        if let Err(e) = execute(&cfg2, &spec2, &ov2) {
            result = Err(format!(
                "asserts.invariant: re-run at {param}={n} failed: {e}"
            ));
            break;
        }
        for file in &files {
            comparisons += 1;
            let base = std::fs::read(cfg.results.join(file));
            let variant = std::fs::read(scratch.join(file));
            match (base, variant) {
                (Ok(a), Ok(b)) if a == b => {}
                (Ok(_), Ok(_)) => {
                    result = Err(format!(
                        "asserts.invariant: {file} differs at {param}={n} (must be byte-identical)"
                    ));
                    break 'outer;
                }
                (Err(e), _) => {
                    result = Err(format!("asserts.invariant: read base {file}: {e}"));
                    break 'outer;
                }
                (_, Err(e)) => {
                    result = Err(format!(
                        "asserts.invariant: re-run at {param}={n} produced no {file}: {e}"
                    ));
                    break 'outer;
                }
            }
        }
    }
    // Scratch runs are throwaway; never leave them in the results dir.
    let _ = std::fs::remove_dir_all(&scratch_root);
    result.map(|()| comparisons)
}
