//! `mimo-spec` — the declarative scenario layer.
//!
//! A scenario spec is a TOML file naming a topology (single loop, fleet,
//! or cluster — or one of the paper's own experiments), the
//! governor/arbiter selection, workload mix, phase schedule, fault plan,
//! and expected-outcome assertions. `mimo-exp run <spec.toml>` executes
//! it; `validate` checks it without running; `schema` prints the key
//! reference. The figure subcommands are thin aliases over the
//! [`embedded`] copies of `specs/*.toml`, so every experiment the harness
//! can run is reproducible from a checked-in file.
//!
//! Pipeline: [`toml`] parses the text into the vendored serde stub's
//! line-spanned value tree → the model layer's [`RunSpec`] extracts
//! itself via `FromValue` (every error carries key path + line) → the
//! lowering layer maps the scenario onto
//! `FleetConfig`/`ClusterConfig`/epoch-loop builders → [`run_spec`]
//! executes and checks assertions.

pub mod embedded;
mod lower;
mod model;
mod run;
mod schema;
pub mod toml;

use std::path::Path;

use serde::de::{DeError, DeResult};

pub use model::{
    Asserts, ClusterSpec, CoreFault, DigestAssert, FleetSpec, GovernorKind, InvariantAssert,
    LlcSpec, LoopSpec, OutputChannel, PaperExperiment, PhaseSpec, QuarantinedAssert, RunSpec,
    Scenario, TrackingErrorAssert, SCHEMA_VERSION,
};
pub use run::{run_spec, RunOverrides};
pub use schema::SCHEMA_TEXT;

/// Parses a spec from TOML text (syntax, shape, and semantic checks).
///
/// # Errors
///
/// [`DeError`] with the offending line and key path.
pub fn parse_str(src: &str) -> DeResult<RunSpec> {
    RunSpec::from_table(&toml::parse(src)?)
}

/// Reads and parses a spec file; every failure names the file, and parse
/// failures name the offending line/key (`spec.toml:12: cluster.chips:
/// expected integer, got string "four"`).
///
/// # Errors
///
/// A rendered, file-prefixed message for unreadable or malformed specs.
pub fn load(path: &Path) -> Result<RunSpec, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read spec: {e}", path.display()))?;
    parse_str(&text).map_err(|e| format_error(path, &e))
}

/// Renders a [`DeError`] with its source file: `file:line: path: msg`.
pub fn format_error(path: &Path, e: &DeError) -> String {
    let file = path.display();
    match (e.line, e.path.is_empty()) {
        (0, true) => format!("{file}: {}", e.msg),
        (0, false) => format!("{file}: {}: {}", e.path, e.msg),
        (_, true) => format!("{file}:{}: {}", e.line, e.msg),
        (_, false) => format!("{file}:{}: {}: {}", e.line, e.path, e.msg),
    }
}

/// Static checks beyond parsing: lowers the scenario onto the runtime
/// configs (running their own `validate`) without executing anything.
/// This is what `mimo-exp validate` adds over `parse_str`.
///
/// # Errors
///
/// [`DeError`] naming the rejected key.
pub fn check(spec: &RunSpec) -> DeResult<()> {
    match &spec.scenario {
        Scenario::Paper(_) => Ok(()),
        Scenario::Loop(l) => l.check_app(),
        Scenario::Fleet(f) => f.lower(None).map(drop),
        Scenario::Cluster(c) => c.lower(None, None).map(drop),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn load_names_the_file_on_every_failure_class() {
        let missing = PathBuf::from("/no/such/spec.toml");
        let err = load(&missing).unwrap_err();
        assert!(err.starts_with("/no/such/spec.toml:"), "{err}");

        let dir = std::env::temp_dir().join("mimo-spec-mod-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.toml");
        std::fs::write(&bad, "schema = \n").unwrap();
        let err = load(&bad).unwrap_err();
        assert!(err.contains("bad.toml:1:"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_error_renders_all_position_shapes() {
        let p = PathBuf::from("s.toml");
        let full = DeError::at("a.b", 7, "boom");
        assert_eq!(format_error(&p, &full), "s.toml:7: a.b: boom");
        let line_only = DeError::at_line(7, "boom");
        assert_eq!(format_error(&p, &line_only), "s.toml:7: boom");
        let path_only = DeError::at("a.b", 0, "boom");
        assert_eq!(format_error(&p, &path_only), "s.toml: a.b: boom");
    }
}
