//! Controller hot-path micro-timing (`mimo-exp bench`).
//!
//! Measures the two numbers the storage refactor is about — the
//! per-epoch LQG step and a 16-core fleet epoch sweep — on both the
//! dynamic heap-backed path and the stack-allocated static path, and
//! renders them as `BENCH_controller.json`. Unlike the Criterion suite
//! (which needs `cargo bench` and minutes of sampling) this is a fast
//! median-of-batches measurement suitable for CI smoke runs and for
//! committing a baseline artifact.
//!
//! Timings are observational only; the measured controllers are
//! bit-identical by construction (the golden digests prove it), so the
//! speedup ratio is the only thing that can legitimately move here.

use std::hint::black_box;
use std::time::Instant;

use mimo_linalg::Vector;
use mimo_sim::InputSet;

use crate::setup;

/// Median per-iteration wall time in nanoseconds: `samples` batches of
/// `iters` calls each, median across batches (robust to scheduler noise
/// without Criterion's warm-up machinery).
fn median_ns_per_iter(samples: usize, iters: u32, mut f: impl FnMut()) -> f64 {
    // Warm one batch so lazily-initialized state (grids, caches) is paid
    // outside the measurement.
    for _ in 0..iters {
        f();
    }
    let mut batches: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    batches.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    batches[batches.len() / 2]
}

/// The measured timings, ready for [`render_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerBench {
    /// Dynamic-storage LQG step, ns per call.
    pub lqg_step_dynamic_ns: f64,
    /// Static-storage LQG step, ns per call.
    pub lqg_step_static_ns: f64,
    /// 16-core, 50-epoch fleet sweep on the dynamic path, ms per run.
    pub fleet_epoch_dynamic_ms: f64,
    /// Same sweep on the default (static) path, ms per run.
    pub fleet_epoch_static_ms: f64,
}

impl ControllerBench {
    /// `dynamic / static` step-time ratio (> 1 means static is faster).
    pub fn step_speedup(&self) -> f64 {
        self.lqg_step_dynamic_ns / self.lqg_step_static_ns
    }

    /// `dynamic / static` fleet-sweep ratio.
    pub fn fleet_speedup(&self) -> f64 {
        self.fleet_epoch_dynamic_ms / self.fleet_epoch_static_ms
    }
}

/// Runs the measurement on the paper's two-input architecture
/// (2-in/2-out/4-state, the shape the fleet deploys).
///
/// # Errors
///
/// Propagates controller-synthesis failures as strings (the CLI's error
/// currency).
pub fn run() -> Result<ControllerBench, String> {
    let design = setup::design_mimo(InputSet::FreqCache, 1).map_err(|e| e.to_string())?;

    // --- LQG step, dynamic vs static ------------------------------------
    let mut dynamic = design.controller.clone();
    dynamic.set_reference(&Vector::from_slice(&[2.8, 1.9]));
    let mut fixed = design
        .controller
        .clone()
        .into_static::<2, 2, 4, 8>()
        .map_err(|e| e.to_string())?;
    fixed.set_reference(&Vector::from_slice(&[2.8, 1.9]));
    let y = Vector::from_slice(&[2.3, 1.7]);
    let mut out = Vector::zeros(2);
    let lqg_step_dynamic_ns = median_ns_per_iter(15, 20_000, || {
        dynamic.step_into(black_box(&y), &mut out);
        black_box(out[0]);
    });
    let lqg_step_static_ns = median_ns_per_iter(15, 20_000, || {
        fixed.step_into(black_box(&y), &mut out);
        black_box(out[0]);
    });

    // --- 16-core, 50-epoch fleet sweep -----------------------------------
    let fleet = |static_path: bool| -> Result<f64, String> {
        let ns = median_ns_per_iter(9, 1, || {
            let cfg = mimo_fleet::FleetConfig::new(16)
                .workers(1)
                .epochs(50)
                .seed(11);
            let runner = if static_path {
                mimo_fleet::FleetRunner::with_shared_controller(cfg, &design.controller)
            } else {
                mimo_fleet::FleetRunner::with_shared_controller_dynamic(cfg, &design.controller)
            }
            .expect("validated fleet config");
            black_box(runner.run().expect("validated fleet config").digest());
        });
        Ok(ns / 1e6)
    };
    let fleet_epoch_static_ms = fleet(true)?;
    let fleet_epoch_dynamic_ms = fleet(false)?;

    Ok(ControllerBench {
        lqg_step_dynamic_ns,
        lqg_step_static_ns,
        fleet_epoch_dynamic_ms,
        fleet_epoch_static_ms,
    })
}

/// Fleet- and cluster-scale timings — banked structure-of-arrays stepping
/// vs the per-cell boxed-governor path — ready for [`render_fleet_json`].
///
/// Both paths are bit-identical by construction (the parity suites prove
/// it), so only the wall-clock ratio can legitimately move here.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBench {
    /// Hardware threads on the measuring host; speedups from pool
    /// parallelism are bounded by this (a 1-CPU host runs every band
    /// serially, so any gain is pure bank-kernel efficiency).
    pub host_cpus: usize,
    /// 16-core, 50-epoch fleet sweep, per-cell governors, ms per run.
    pub fleet_per_cell_ms: f64,
    /// Same sweep with banked SoA stepping, ms per run.
    pub fleet_banked_ms: f64,
    /// Epochs of the 64-chip × 64-core cluster measurement.
    pub cluster_epochs: usize,
    /// 64×64 cluster (4096 governors), per-cell, µs per chip epoch
    /// (amortized: total wall / epochs, including runner construction).
    pub cluster_per_cell_epoch_us: f64,
    /// Same cluster with banked stepping, µs per chip epoch.
    pub cluster_banked_epoch_us: f64,
}

impl FleetBench {
    /// `per_cell / banked` fleet-sweep ratio (> 1 means banked is faster).
    pub fn fleet_speedup(&self) -> f64 {
        self.fleet_per_cell_ms / self.fleet_banked_ms
    }

    /// `per_cell / banked` cluster-epoch ratio.
    pub fn cluster_speedup(&self) -> f64 {
        self.cluster_per_cell_epoch_us / self.cluster_banked_epoch_us
    }
}

/// Runs the fleet/cluster measurement: the PR 7 baseline sweep
/// (16 cores × 50 epochs) and a 64-chip × 64-core cluster epoch, each on
/// the per-cell and the banked path.
///
/// # Errors
///
/// Propagates controller-synthesis failures as strings (the CLI's error
/// currency).
pub fn run_fleet() -> Result<FleetBench, String> {
    let design = setup::design_mimo(InputSet::FreqCache, 1).map_err(|e| e.to_string())?;

    let fleet = |banked: bool| -> f64 {
        median_ns_per_iter(25, 1, || {
            let cfg = mimo_fleet::FleetConfig::new(16)
                .workers(1)
                .epochs(50)
                .seed(11)
                .banked(banked);
            let runner = mimo_fleet::FleetRunner::with_shared_controller(cfg, &design.controller)
                .expect("validated fleet config");
            black_box(runner.run().expect("validated fleet config").digest());
        }) / 1e6
    };
    let fleet_per_cell_ms = fleet(false);
    let fleet_banked_ms = fleet(true);

    // 64 chips × 64 cores = 4096 governors. Amortized per-epoch cost:
    // total wall (including construction) over the epoch count.
    const CLUSTER_EPOCHS: usize = 24;
    let cluster = |banked: bool| -> f64 {
        median_ns_per_iter(7, 1, || {
            let cfg = mimo_fleet::ClusterConfig::new(64, 64)
                .shards(1)
                .epochs(CLUSTER_EPOCHS)
                .exchange_period(8)
                .seed(17)
                .banked(banked);
            let runner = mimo_fleet::ClusterRunner::with_shared_controller(cfg, &design.controller)
                .expect("validated cluster config");
            black_box(runner.run().expect("validated cluster config").digest());
        }) / 1e3
            / CLUSTER_EPOCHS as f64
    };
    let cluster_per_cell_epoch_us = cluster(false);
    let cluster_banked_epoch_us = cluster(true);

    Ok(FleetBench {
        host_cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        fleet_per_cell_ms,
        fleet_banked_ms,
        cluster_epochs: CLUSTER_EPOCHS,
        cluster_per_cell_epoch_us,
        cluster_banked_epoch_us,
    })
}

/// Renders the fleet timings as the `BENCH_fleet.json` document.
pub fn render_fleet_json(b: &FleetBench) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"mimo-exp-fleet-bench/1\",\n");
    out.push_str(&format!("  \"host_cpus\": {},\n", b.host_cpus));
    out.push_str(&format!(
        "  \"fleet_16c_50e_ms\": {{ \"per_cell\": {:.3}, \"banked\": {:.3}, \"speedup\": {:.3} }},\n",
        b.fleet_per_cell_ms,
        b.fleet_banked_ms,
        b.fleet_speedup()
    ));
    out.push_str(&format!(
        "  \"cluster_64x64_epoch_us\": {{ \"per_cell\": {:.1}, \"banked\": {:.1}, \"speedup\": {:.3}, \"epochs\": {}, \"governors\": 4096 }}\n",
        b.cluster_per_cell_epoch_us,
        b.cluster_banked_epoch_us,
        b.cluster_speedup(),
        b.cluster_epochs
    ));
    out.push_str("}\n");
    out
}

/// Renders the timings as the `BENCH_controller.json` document.
pub fn render_json(b: &ControllerBench) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"mimo-exp-controller-bench/1\",\n");
    out.push_str("  \"architecture\": \"two-input (2-in/2-out/4-state)\",\n");
    out.push_str(&format!(
        "  \"lqg_step_ns\": {{ \"dynamic\": {:.1}, \"static\": {:.1}, \"speedup\": {:.3} }},\n",
        b.lqg_step_dynamic_ns,
        b.lqg_step_static_ns,
        b.step_speedup()
    ));
    out.push_str(&format!(
        "  \"fleet_16c_50e_ms\": {{ \"dynamic\": {:.3}, \"static\": {:.3}, \"speedup\": {:.3} }}\n",
        b.fleet_epoch_dynamic_ms,
        b.fleet_epoch_static_ms,
        b.fleet_speedup()
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_shape() {
        let b = ControllerBench {
            lqg_step_dynamic_ns: 150.0,
            lqg_step_static_ns: 100.0,
            fleet_epoch_dynamic_ms: 1.5,
            fleet_epoch_static_ms: 1.2,
        };
        let doc = render_json(&b);
        assert!(doc.starts_with('{') && doc.ends_with("}\n"));
        assert!(doc.contains("\"lqg_step_ns\""));
        assert!(doc.contains("\"fleet_16c_50e_ms\""));
        assert!(doc.contains("\"speedup\": 1.500"));
        assert!((b.step_speedup() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fleet_json_document_shape() {
        let b = FleetBench {
            host_cpus: 8,
            fleet_per_cell_ms: 1.8,
            fleet_banked_ms: 0.45,
            cluster_epochs: 24,
            cluster_per_cell_epoch_us: 9000.0,
            cluster_banked_epoch_us: 3000.0,
        };
        let doc = render_fleet_json(&b);
        assert!(doc.starts_with('{') && doc.ends_with("}\n"));
        assert!(doc.contains("\"schema\": \"mimo-exp-fleet-bench/1\""));
        assert!(doc.contains("\"host_cpus\": 8"));
        assert!(doc.contains("\"fleet_16c_50e_ms\""));
        assert!(doc.contains("\"cluster_64x64_epoch_us\""));
        assert!(doc.contains("\"governors\": 4096"));
        assert!((b.fleet_speedup() - 4.0).abs() < 1e-12);
        assert!((b.cluster_speedup() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut calls = 0u32;
        let ns = median_ns_per_iter(5, 1, || {
            calls += 1;
            if calls == 2 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        // The one slow batch must not drag the median to milliseconds.
        assert!(ns < 1e6, "median polluted by outlier: {ns} ns");
    }
}
