//! Wall-clock instrumentation for the harness (`--timing`).
//!
//! Records per-subcommand and per-cell wall time during a run and renders
//! them as `BENCH_harness.json` — the perf trajectory artifact CI uploads.
//! The sink is disabled by default and costs one `Option` check per record
//! call when off, so the hot path of an untimed run is untouched.
//!
//! Timing is observational only: it never feeds back into cell results, so
//! CSVs stay bit-identical whether or not `--timing` is on (the CI
//! determinism diff excludes `BENCH_harness.json` for exactly this reason).

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One timed grid cell inside a subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// Cell label, e.g. `fig11/astar/mimo`.
    pub label: String,
    /// Wall-clock seconds the cell took.
    pub wall_s: f64,
}

/// One timed subcommand (fig06, tab-opt, ...).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SubcommandTiming {
    /// Subcommand name as the CLI spells it.
    pub name: String,
    /// Wall-clock seconds for the whole subcommand.
    pub wall_s: f64,
    /// Per-cell breakdown, in cell order.
    pub cells: Vec<CellTiming>,
}

#[derive(Debug, Default)]
struct TimerState {
    subcommands: Vec<SubcommandTiming>,
    /// Cells recorded since the current subcommand began.
    pending_cells: Vec<CellTiming>,
}

/// A shareable wall-clock recorder. A disabled sink (the default) records
/// nothing; [`TimingSink::enabled`] builds one that accumulates.
#[derive(Debug, Clone, Default)]
pub struct TimingSink {
    state: Option<Arc<Mutex<TimerState>>>,
}

impl TimingSink {
    /// A sink that discards everything (no `--timing`).
    pub fn disabled() -> Self {
        TimingSink::default()
    }

    /// A sink that accumulates timings for [`TimingSink::render_json`].
    pub fn enabled() -> Self {
        TimingSink {
            state: Some(Arc::new(Mutex::new(TimerState::default()))),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Times `f` as subcommand `name`, folding in any cells recorded
    /// while it ran.
    pub fn subcommand<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let Some(state) = &self.state else {
            return f();
        };
        let start = Instant::now();
        let r = f();
        let wall_s = start.elapsed().as_secs_f64();
        let mut s = state.lock().expect("timing sink poisoned");
        let cells = std::mem::take(&mut s.pending_cells);
        s.subcommands.push(SubcommandTiming {
            name: name.to_string(),
            wall_s,
            cells,
        });
        r
    }

    /// Records one grid cell's wall time; attributed to the subcommand
    /// whose `subcommand` call is currently in flight.
    pub fn record_cell(&self, label: &str, wall_s: f64) {
        if let Some(state) = &self.state {
            state
                .lock()
                .expect("timing sink poisoned")
                .pending_cells
                .push(CellTiming {
                    label: label.to_string(),
                    wall_s,
                });
        }
    }

    /// Snapshot of all completed subcommand timings, in run order.
    pub fn subcommands(&self) -> Vec<SubcommandTiming> {
        match &self.state {
            Some(state) => state
                .lock()
                .expect("timing sink poisoned")
                .subcommands
                .clone(),
            None => Vec::new(),
        }
    }

    /// Renders the `BENCH_harness.json` document. `wall_s` is the whole
    /// run (flag parse to exit), `jobs`/`epochs` echo the effective
    /// configuration, and `(hits, misses)` are the design-cache counters.
    pub fn render_json(
        &self,
        jobs: usize,
        epochs: usize,
        wall_s: f64,
        hits: u64,
        misses: u64,
    ) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"mimo-exp-harness-timing/1\",\n");
        out.push_str(&format!("  \"jobs\": {jobs},\n"));
        out.push_str(&format!("  \"epochs\": {epochs},\n"));
        out.push_str(&format!("  \"wall_s\": {},\n", json_f64(wall_s)));
        out.push_str(&format!(
            "  \"design_cache\": {{ \"hits\": {hits}, \"misses\": {misses} }},\n"
        ));
        out.push_str("  \"subcommands\": [");
        let subs = self.subcommands();
        for (i, sub) in subs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{ \"name\": {}, \"wall_s\": {}, \"cells\": [",
                json_str(&sub.name),
                json_f64(sub.wall_s)
            ));
            for (j, cell) in sub.cells.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{ \"label\": {}, \"wall_s\": {} }}",
                    json_str(&cell.label),
                    json_f64(cell.wall_s)
                ));
            }
            if sub.cells.is_empty() {
                out.push_str("] }");
            } else {
                out.push_str("\n    ] }");
            }
        }
        if subs.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

/// JSON string literal with the escapes our labels can need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite float as JSON (6 decimal places — microsecond resolution).
fn json_f64(v: f64) -> String {
    format!("{v:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TimingSink::disabled();
        assert!(!sink.is_enabled());
        let r = sink.subcommand("fig06", || {
            sink.record_cell("fig06/Equal", 0.5);
            42
        });
        assert_eq!(r, 42);
        assert!(sink.subcommands().is_empty());
    }

    #[test]
    fn cells_attach_to_their_subcommand() {
        let sink = TimingSink::enabled();
        sink.subcommand("fig06", || {
            sink.record_cell("fig06/Equal", 0.25);
            sink.record_cell("fig06/Power", 0.5);
        });
        sink.subcommand("fig07", || {});
        let subs = sink.subcommands();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].name, "fig06");
        assert_eq!(subs[0].cells.len(), 2);
        assert_eq!(subs[0].cells[1].label, "fig06/Power");
        assert!(subs[1].cells.is_empty());
        assert!(subs[0].wall_s >= 0.0);
    }

    #[test]
    fn render_json_matches_schema() {
        let sink = TimingSink::enabled();
        sink.subcommand("fig06", || sink.record_cell("fig06/Equal", 0.125));
        let doc = sink.render_json(4, 500, 1.5, 9, 3);
        assert!(doc.contains("\"schema\": \"mimo-exp-harness-timing/1\""));
        assert!(doc.contains("\"jobs\": 4"));
        assert!(doc.contains("\"epochs\": 500"));
        assert!(doc.contains("\"hits\": 9, \"misses\": 3"));
        assert!(doc.contains("\"label\": \"fig06/Equal\", \"wall_s\": 0.125000"));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("tab\u{0009}"), "\"tab\\u0009\"");
    }

    #[test]
    fn clones_share_state() {
        let sink = TimingSink::enabled();
        let clone = sink.clone();
        sink.subcommand("fig06", || clone.record_cell("x", 0.1));
        assert_eq!(clone.subcommands()[0].cells.len(), 1);
    }
}
