//! Battery/QoE reference schedule for time-varying tracking (§VII-B2).
//!
//! The paper models a handheld whose OS lowers the (IPS, power) targets as
//! the battery drains, using the QoE and battery-charge models of Yan et
//! al. \[36\], with reference changes every 2 000 epochs and a total energy
//! supply of 1 J. We reproduce the *shape*: a QoE-style utility keeps the
//! performance target high while charge is plentiful and degrades it
//! steeply as the battery empties, with the power target following.

use mimo_linalg::Vector;

use crate::runner::ReferenceStep;

/// Battery-aware reference generator.
#[derive(Debug, Clone, PartialEq)]
pub struct BatterySchedule {
    /// Total energy supply in joules (the paper uses 1 J).
    pub supply_j: f64,
    /// Epochs between target updates (the paper uses 2 000).
    pub update_epochs: usize,
    /// Target outputs at full charge: `[IPS, power]`.
    pub full_targets: Vector,
    /// Floor the targets never drop below (device keeps running).
    pub min_fraction: f64,
}

impl BatterySchedule {
    /// The paper's configuration: 1 J supply, updates every 2 000 epochs,
    /// full-charge targets of 2.5 BIPS / 2 W, floor at 20%.
    pub fn paper_default() -> Self {
        BatterySchedule {
            supply_j: 1.0,
            update_epochs: 2000,
            full_targets: Vector::from_slice(&[crate::TARGET_IPS, crate::TARGET_POWER]),
            min_fraction: 0.2,
        }
    }

    /// QoE-style scaling: utility stays near 1 above half charge and falls
    /// off quadratically below (low-battery anxiety region of \[36\]).
    pub fn target_fraction(&self, charge_fraction: f64) -> f64 {
        let c = charge_fraction.clamp(0.0, 1.0);
        let f = if c >= 0.5 {
            0.85 + 0.15 * (c - 0.5) / 0.5
        } else {
            // Quadratic rolloff below half charge.
            0.85 * (c / 0.5).powi(2).max(0.0)
        };
        f.max(self.min_fraction)
    }

    /// Builds the reference schedule for a run of `epochs`, assuming the
    /// plant drains the battery at roughly the *power target* (the paper's
    /// agent plans against its own budget).
    pub fn schedule(&self, epochs: usize) -> Vec<ReferenceStep> {
        let mut steps = Vec::new();
        let mut charge = self.supply_j;
        let mut epoch = 0;
        while epoch < epochs {
            let frac_charge = (charge / self.supply_j).max(0.0);
            let f = self.target_fraction(frac_charge);
            let targets = Vector::from_slice(&[self.full_targets[0] * f, self.full_targets[1] * f]);
            // Planned energy spent during this window at the power target.
            let window_s = self.update_epochs as f64 * 50e-6;
            charge -= targets[1] * window_s;
            steps.push(ReferenceStep { epoch, targets });
            epoch += self.update_epochs;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_is_monotone_in_charge() {
        let s = BatterySchedule::paper_default();
        let mut prev = 0.0;
        for k in 0..=10 {
            let f = s.target_fraction(k as f64 / 10.0);
            assert!(f >= prev - 1e-12, "fraction dipped at {k}");
            prev = f;
        }
        assert!((s.target_fraction(1.0) - 1.0).abs() < 1e-12);
        assert!(s.target_fraction(0.0) >= s.min_fraction);
    }

    #[test]
    fn schedule_steps_down_over_time() {
        let s = BatterySchedule::paper_default();
        let steps = s.schedule(10_000);
        assert_eq!(steps.len(), 5);
        assert_eq!(steps[0].epoch, 0);
        assert_eq!(steps[1].epoch, 2000);
        // Targets decrease (weakly) step over step.
        for w in steps.windows(2) {
            assert!(w[1].targets[0] <= w[0].targets[0] + 1e-12);
            assert!(w[1].targets[1] <= w[0].targets[1] + 1e-12);
        }
        // And reach a visibly lower level by the end.
        assert!(steps.last().unwrap().targets[0] < 0.9 * steps[0].targets[0]);
    }

    #[test]
    fn floor_respected() {
        let s = BatterySchedule {
            supply_j: 0.05, // tiny battery drains immediately
            ..BatterySchedule::paper_default()
        };
        let steps = s.schedule(20_000);
        for step in &steps {
            assert!(step.targets[0] >= s.min_fraction * s.full_targets[0] - 1e-12);
        }
    }
}
