//! CSV output and paper-vs-measured reporting.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// An explicit handle to the directory experiment artifacts land in.
///
/// Writers receive this handle (via `ExpConfig::results`) instead of
/// consulting process-global state, so concurrent subcommands and parallel
/// grid cells cannot race on cwd- or override-derived paths: every write
/// resolves against the same immutable handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultsDir(PathBuf);

impl ResultsDir {
    /// A handle rooted at an explicit directory (the CLI's `--out`).
    pub fn new<P: Into<PathBuf>>(dir: P) -> Self {
        ResultsDir(dir.into())
    }

    /// The discovery rule: the first existing `results` directory walking
    /// up from the current directory, else `results`.
    pub fn discover() -> Self {
        let candidates = ["results", "../results", "../../results"];
        for c in candidates {
            let p = Path::new(c);
            if p.is_dir() {
                return ResultsDir(p.to_path_buf());
            }
        }
        ResultsDir(PathBuf::from("results"))
    }

    /// The directory this handle writes into.
    pub fn path(&self) -> &Path {
        &self.0
    }

    /// Path of a named artifact inside the results directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }

    /// Writes a CSV file with a header row into the results directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(
        &self,
        name: &str,
        header: &[&str],
        rows: &[Vec<String>],
    ) -> io::Result<PathBuf> {
        let mut out = String::new();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        self.write_text(name, &out)
    }

    /// Writes a text artifact (e.g. `BENCH_harness.json`) into the
    /// results directory, creating it if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_text(&self, name: &str, contents: &str) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.0)?;
        let path = self.0.join(name);
        fs::write(&path, contents)?;
        Ok(path)
    }
}

impl Default for ResultsDir {
    fn default() -> Self {
        ResultsDir::discover()
    }
}

/// Renders an ASCII table: `header` then one row per entry.
pub fn ascii_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut s = String::new();
    let rule = |s: &mut String| {
        for w in &widths {
            let _ = write!(s, "+{}", "-".repeat(w + 2));
        }
        s.push_str("+\n");
    };
    rule(&mut s);
    for (c, h) in header.iter().enumerate() {
        let _ = write!(s, "| {:<w$} ", h, w = widths[c]);
    }
    s.push_str("|\n");
    rule(&mut s);
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            let _ = write!(s, "| {:<w$} ", cell, w = widths[c]);
        }
        s.push_str("|\n");
    }
    rule(&mut s);
    s
}

/// One paper-vs-measured comparison line.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// What is being compared (e.g. "avg E×D reduction, MIMO").
    pub label: String,
    /// The paper's reported value, as text (units included).
    pub paper: String,
    /// Our measured value, as text.
    pub measured: String,
}

impl Comparison {
    /// Builds a comparison row.
    pub fn new(label: &str, paper: &str, measured: &str) -> Self {
        Comparison {
            label: label.into(),
            paper: paper.into(),
            measured: measured.into(),
        }
    }
}

/// Renders comparison rows as an ASCII table.
pub fn comparison_table(title: &str, rows: &[Comparison]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|c| vec![c.label.clone(), c.paper.clone(), c.measured.clone()])
        .collect();
    format!(
        "\n== {title} ==\n{}",
        ascii_table(&["quantity", "paper", "measured"], &body)
    )
}

/// Formats a float with fixed decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a percentage change with a sign (negative = reduction).
pub fn fmt_pct(v: f64) -> String {
    format!("{v:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_table_renders_aligned() {
        let t = ascii_table(
            &["app", "value"],
            &[
                vec!["astar".into(), "1.00".into()],
                vec!["libquantum".into(), "0.50".into()],
            ],
        );
        assert!(t.contains("libquantum"));
        assert!(t.contains("| app"));
        // All rule lines have equal length.
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn comparison_table_includes_title() {
        let rows = vec![Comparison::new("E×D reduction", "16%", "14.2%")];
        let t = comparison_table("Figure 9", &rows);
        assert!(t.contains("Figure 9"));
        assert!(t.contains("16%"));
    }

    #[test]
    fn csv_round_trip() {
        let dir = ResultsDir::new(
            std::env::temp_dir().join(format!("mimo_report_unit_{}", std::process::id())),
        );
        let rows = vec![vec!["a".to_string(), "1".to_string()]];
        let path = dir
            .write_csv("test_report_unit.csv", &["name", "v"], &rows)
            .unwrap();
        assert_eq!(path, dir.join("test_report_unit.csv"));
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "name,v\na,1\n");
        std::fs::remove_file(path).unwrap();
        std::fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(-16.0), "-16.0%");
        assert_eq!(fmt_pct(4.2), "+4.2%");
    }
}
