//! Integration tests for the hierarchical cluster runtime driven by a real
//! synthesized MIMO controller (the `cluster_scale` deployment model in
//! miniature).

use mimo_exp::setup;
use mimo_fleet::{ClusterConfig, ClusterRunner, FleetConfig, FleetRunner};
use mimo_sim::fault::{FaultKind, FaultSpec};
use mimo_sim::llc::LlcConfig;
use mimo_sim::InputSet;

#[test]
fn one_chip_cluster_matches_the_fleet_runner_with_a_real_controller() {
    let design = setup::design_mimo(InputSet::FreqCache, 2016).expect("design");
    let ccfg = ClusterConfig::new(1, 4)
        .epochs(300)
        .exchange_period(50)
        .seed(2016);
    let cluster = ClusterRunner::with_shared_controller(ccfg, &design.controller)
        .expect("cluster")
        .run()
        .expect("validated cluster config");
    let fcfg = FleetConfig::new(4).workers(4).epochs(300).seed(2016);
    let fleet = FleetRunner::with_shared_controller(fcfg, &design.controller)
        .expect("fleet")
        .run()
        .expect("validated fleet config");
    assert_eq!(cluster.per_chip[0], fleet);
    assert_eq!(cluster.per_chip[0].digest(), fleet.digest());
    assert!(cluster.energy_j > 0.0);
}

#[test]
fn contended_cluster_is_shard_invariant_at_issue_scale() {
    // The acceptance shape: >= 4 chips x >= 16 cores, LLC contention on,
    // digests bit-identical across shard counts {1, 2, 4} (and 8 capped
    // to the chip count, i.e. a duplicate of 4 — run the distinct ones).
    let design = setup::design_mimo(InputSet::FreqCache, 2016).expect("design");
    let mk = |shards: usize| {
        ClusterConfig::new(4, 16)
            .epochs(100)
            .exchange_period(20)
            .shards(shards)
            .llc_contention(LlcConfig::for_cores(16).total_ways(4 * 16))
            .seed(2016)
    };
    let base = ClusterRunner::with_shared_controller(mk(1), &design.controller)
        .expect("cluster")
        .run()
        .expect("run");
    assert_eq!(base.total_cores, 64);
    assert!(base.exchanges > 0);
    for shards in [2usize, 4] {
        let other = ClusterRunner::with_shared_controller(mk(shards), &design.controller)
            .expect("cluster")
            .run()
            .expect("run");
        assert_eq!(base, other, "shards = {shards}");
        assert_eq!(base.digest(), other.digest(), "shards = {shards}");
    }
}

#[test]
fn fully_quarantined_chip_frees_its_budget_for_the_others() {
    // Kill every core of chip 1 with permanently-NaN IPS sensors: the chip
    // quarantines whole, the cluster arbiter pins it at the floor, and the
    // healthy chips inherit the freed budget. The cluster cap is set below
    // the nominal sum so the redistribution is visible in the chip caps.
    let design = setup::design_mimo(InputSet::FreqCache, 2016).expect("design");
    let nan = FaultSpec {
        kind: FaultKind::NanMeasurement { channel: 0 },
        start_epoch: 10,
        duration: u64::MAX,
    };
    let mk = |shards: usize| {
        let mut cfg = ClusterConfig::new(3, 4)
            .epochs(240)
            .exchange_period(40)
            .cluster_power_cap(0.8 * 3.0 * 4.8)
            .shards(shards)
            .seed(2016);
        for core in 0..4 {
            cfg = cfg.chip_core_fault(1, core, nan);
        }
        cfg
    };
    let stats = ClusterRunner::with_shared_controller(mk(1), &design.controller)
        .expect("cluster")
        .run()
        .expect("run");
    assert_eq!(stats.per_chip[1].quarantined_cores, 4);
    assert_eq!(stats.quarantined_cores, 4);
    // The dead chip ends the run pinned at the cluster floor; the healthy
    // chips end with strictly more budget than a uniform three-way split
    // of the (reduced) cluster cap.
    let floor: f64 = 4.0 * 0.2 * 1.9;
    assert_eq!(stats.per_chip[1].chip_cap_w.to_bits(), floor.to_bits());
    let uniform_share = stats.cluster_cap_w / 3.0;
    for chip in [0usize, 2] {
        assert!(
            stats.per_chip[chip].chip_cap_w > uniform_share,
            "chip {chip}: {} vs uniform {}",
            stats.per_chip[chip].chip_cap_w,
            uniform_share
        );
    }
    // And the fault/quarantine process is itself shard-invariant.
    let sharded = ClusterRunner::with_shared_controller(mk(3), &design.controller)
        .expect("cluster")
        .run()
        .expect("run");
    assert_eq!(stats, sharded);
    assert_eq!(stats.digest(), sharded.digest());
}

#[test]
fn cluster_config_boundaries_are_loud() {
    // 0 chips, 0 cores, shard over-subscription, and bad fault targets
    // are errors, not clamps.
    assert!(ClusterConfig::new(0, 4).validate().is_err());
    assert!(ClusterConfig::new(4, 0).validate().is_err());
    assert!(ClusterConfig::new(2, 4).shards(3).validate().is_err());
    assert!(ClusterConfig::new(2, 4)
        .exchange_period(0)
        .validate()
        .is_err());
    let spec = FaultSpec {
        kind: FaultKind::NanMeasurement { channel: 0 },
        start_epoch: 0,
        duration: 1,
    };
    assert!(ClusterConfig::new(2, 4)
        .chip_core_fault(2, 0, spec)
        .validate()
        .is_err());
    assert!(ClusterConfig::new(2, 4)
        .chip_core_fault(1, 4, spec)
        .validate()
        .is_err());
    assert!(ClusterConfig::new(2, 4)
        .chip_core_fault(1, 3, spec)
        .validate()
        .is_ok());
    // A one-chip cluster is legal and shards(0) auto-resolves.
    assert!(ClusterConfig::new(1, 1).shards(0).validate().is_ok());
    assert!(ClusterConfig::new(1, 1).effective_shards() >= 1);
}
