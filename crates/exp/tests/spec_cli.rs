//! CLI-level contract tests for `mimo-exp run` / `validate` / `schema`:
//! every malformed-spec failure class exits non-zero with the offending
//! file, line, and key on stderr, and the happy paths exit zero.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mimo-exp"))
}

fn repo_specs() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

/// Writes `text` to a fresh temp spec file and returns its path.
fn temp_spec(label: &str, text: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mimo-spec-cli-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{label}.toml"));
    fs::write(&path, text).expect("write temp spec");
    path
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Runs `mimo-exp run <spec>` and asserts it fails with every listed
/// substring on stderr.
fn assert_run_fails(spec: &Path, needles: &[&str]) {
    let out = bin().args(["run"]).arg(spec).output().expect("spawn");
    assert!(
        !out.status.success(),
        "run {} unexpectedly succeeded",
        spec.display()
    );
    let err = stderr_of(&out);
    for needle in needles {
        assert!(err.contains(needle), "stderr missing {needle:?}:\n{err}");
    }
}

#[test]
fn missing_spec_file_exits_nonzero_naming_the_file() {
    assert_run_fails(
        Path::new("/no/such/dir/ghost.toml"),
        &["ghost.toml", "cannot read spec"],
    );
}

#[test]
fn syntax_error_names_file_and_line() {
    let spec = temp_spec("syntax", "schema = 1\nname = \n");
    assert_run_fails(&spec, &["syntax.toml:2:"]);
}

#[test]
fn unknown_key_is_named_with_its_line() {
    let spec = temp_spec(
        "unknown-key",
        "schema = 1\nname = \"x\"\nkind = \"paper\"\nbogus = 1\n[paper]\nexperiment = \"fig06\"\n",
    );
    assert_run_fails(&spec, &["unknown-key.toml", "bogus", "unknown key"]);
}

#[test]
fn type_mismatch_reports_the_expected_type() {
    let spec = temp_spec(
        "mismatch",
        "schema = 1\nname = \"x\"\nkind = \"cluster\"\n[cluster]\nchips = \"four\"\ncores_per_chip = 4\nepochs = 100\n",
    );
    assert_run_fails(
        &spec,
        &["mismatch.toml:5", "cluster.chips", "expected integer"],
    );
}

#[test]
fn unknown_kind_is_rejected() {
    let spec = temp_spec("kind", "schema = 1\nname = \"x\"\nkind = \"galaxy\"\n");
    assert_run_fails(&spec, &["unknown kind", "galaxy"]);
}

#[test]
fn semantic_validation_failure_names_the_rule() {
    let spec = temp_spec(
        "phases",
        "schema = 1\nname = \"x\"\nkind = \"loop\"\n[loop]\napp = \"astar\"\nepochs = 100\n\
         [[loop.phases]]\nepoch = 5\nips = 2.0\npower = 1.5\n",
    );
    assert_run_fails(&spec, &["start at epoch 0"]);
}

#[test]
fn validate_accepts_every_checked_in_spec() {
    let out = bin()
        .arg("validate")
        .arg(repo_specs())
        .output()
        .expect("spawn");
    let (err, text) = (stderr_of(&out), stdout_of(&out));
    assert!(out.status.success(), "validate failed:\n{err}");
    assert!(
        text.contains(&format!(
            "{} spec(s) valid",
            mimo_exp::spec::embedded::EMBEDDED.len()
        )),
        "unexpected validate output:\n{text}"
    );
}

#[test]
fn validate_rejects_a_broken_spec_among_good_ones() {
    let good = temp_spec(
        "good",
        "schema = 1\nname = \"good\"\nkind = \"paper\"\n[paper]\nexperiment = \"fig06\"\n",
    );
    let bad = temp_spec("broken", "schema = 2\nname = \"bad\"\nkind = \"paper\"\n");
    let out = bin()
        .arg("validate")
        .arg(&good)
        .arg(&bad)
        .output()
        .expect("spawn");
    assert!(
        !out.status.success(),
        "validate must fail on the broken spec"
    );
    let text = stdout_of(&out);
    assert!(
        text.contains("good.toml: ok"),
        "good spec not reported:\n{text}"
    );
    let err = stderr_of(&out);
    assert!(err.contains("broken.toml"), "broken spec not named:\n{err}");
}

#[test]
fn schema_subcommand_prints_the_reference() {
    let out = bin().arg("schema").output().expect("spawn");
    assert!(out.status.success());
    let text = stdout_of(&out);
    assert!(text.contains("mimo-exp spec schema"), "{text}");
    assert!(text.contains("[asserts]"), "{text}");
}

#[test]
fn flag_and_positional_misuse_is_rejected_with_usage() {
    let cases: &[&[&str]] = &[
        &["run"],                         // no spec path
        &["run", "a.toml", "b.toml"],     // two spec paths
        &["validate"],                    // no paths
        &["fig06", "--shards", "2"],      // --shards outside cluster specs
        &["fig07", "--trace", "t.jsonl"], // --trace outside fault-sweep
        &["warp-drive"],                  // unknown subcommand
    ];
    for args in cases {
        let out = bin().args(*args).output().expect("spawn");
        assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
        let err = stderr_of(&out);
        assert!(err.contains("error:"), "{args:?} gave no error:\n{err}");
        assert!(err.contains("USAGE"), "{args:?} gave no usage:\n{err}");
    }
}
