//! Property: no matter which workload a plant runs or which of the four
//! Table IV architectures governs it, an [`EpochLoop`] under aggressive
//! fault injection never exposes a NaN or infinite value — faulted epochs
//! are rejected at the engine boundary and last-good values substituted.

use mimo_core::governor::{FixedGovernor, Governor, MimoGovernor};
use mimo_core::heuristic::HeuristicTracker;
use mimo_core::EpochLoop;
use mimo_exp::{setup, TARGET_IPS, TARGET_POWER};
use mimo_linalg::Vector;
use mimo_sim::fault::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
use mimo_sim::workload::catalog_names;
use mimo_sim::{InputSet, ProcessorBuilder};

const EPOCHS: usize = 120;

/// An aggressive plan: a high-rate transient process plus scheduled NaN
/// and stuck-actuator windows, so every run sees real corruption.
fn hostile_plan(seed: u64) -> FaultPlan {
    FaultPlan::transient(0.3, 3, seed)
        .with_fault(FaultSpec {
            kind: FaultKind::NanMeasurement { channel: 0 },
            start_epoch: 20,
            duration: 10,
        })
        .with_fault(FaultSpec {
            kind: FaultKind::ActuatorStuckAt {
                input: 0,
                value: 1.3,
            },
            start_epoch: 50,
            duration: 15,
        })
        .with_fault(FaultSpec {
            kind: FaultKind::PowerSpike { factor: f64::NAN },
            start_epoch: 80,
            duration: 5,
        })
}

fn drive(mut gov: Box<dyn Governor>, app: &str, arch: &str, seed: u64) -> u64 {
    let plant = ProcessorBuilder::new()
        .app(app)
        .seed(seed)
        .input_set(InputSet::FreqCache)
        .build()
        .expect("catalog app");
    gov.set_targets(&Vector::from_slice(&[TARGET_IPS, TARGET_POWER]));
    let injector = FaultInjector::new(plant, hostile_plan(seed ^ 0x5EED));
    let mut lp = EpochLoop::new(gov, injector);
    for epoch in 0..EPOCHS {
        lp.step();
        let finite = lp.outputs().iter().all(|v| v.is_finite())
            && lp.last_input().iter().all(|v| v.is_finite());
        assert!(
            finite,
            "{arch}/{app}: non-finite value escaped at epoch {epoch}: y = {:?}, u = {:?}",
            lp.outputs(),
            lp.last_input()
        );
    }
    lp.fault_epochs()
}

#[test]
fn no_architecture_leaks_non_finite_values_under_faults() {
    let seed = 2016;
    let design = setup::design_mimo(InputSet::FreqCache, seed).expect("design");
    let decoupled = setup::decoupled_governor(seed).expect("decoupled");
    let ranking = setup::heuristic_ranking(InputSet::FreqCache, seed);
    let grids: Vec<Vec<f64>> = InputSet::FreqCache
        .grids()
        .iter()
        .map(|g| g.values().to_vec())
        .collect();
    let target = Vector::from_slice(&[TARGET_IPS, TARGET_POWER]);

    let apps = catalog_names();
    assert_eq!(apps.len(), 28, "expected the full 28-workload catalog");

    let mut total_faults = 0;
    for (k, app) in apps.iter().enumerate() {
        let seed_k = seed + k as u64;
        let governors: Vec<(&str, Box<dyn Governor>)> = vec![
            (
                "mimo",
                Box::new(MimoGovernor::new(design.controller.clone())),
            ),
            ("decoupled", Box::new(decoupled.clone())),
            (
                "heuristic",
                Box::new(HeuristicTracker::new(
                    grids.clone(),
                    ranking.clone(),
                    target.clone(),
                )),
            ),
            (
                "baseline",
                Box::new(FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]))),
            ),
        ];
        for (arch, gov) in governors {
            total_faults += drive(gov, app, arch, seed_k);
        }
    }
    // The hostile plan must have actually corrupted epochs, or this test
    // proves nothing.
    assert!(
        total_faults > 1000,
        "expected widespread injected faults, saw {total_faults}"
    );
}
