//! The harness's determinism guarantee: CSV output is byte-identical at
//! any `--jobs` count, because cells own index-seeded plants and results
//! are always collected in cell order.

use std::fs;
use std::path::{Path, PathBuf};

use mimo_core::optimizer::Metric;
use mimo_exp::experiments::{self, ExpConfig};
use mimo_exp::report::ResultsDir;
use mimo_sim::InputSet;

/// A config small enough for a test but exercising real parallel grids:
/// fig06's four weight-set cells and tab-opt's (app × architecture) cells.
fn test_config(jobs: usize, out: &Path) -> ExpConfig {
    let mut cfg = ExpConfig::quick();
    cfg.emit = true;
    cfg.jobs = jobs;
    cfg.results = ResultsDir::new(out);
    cfg.apps = Some(vec!["astar", "milc", "mcf"]);
    cfg.budget_g = 0.3;
    cfg.tracking_epochs = 600;
    cfg
}

fn run_suite(jobs: usize, out: &Path) {
    let cfg = test_config(jobs, out);
    experiments::fig06(&cfg).expect("fig06");
    // tab-opt is two optimization experiments; Energy alone keeps the
    // test fast while covering the (app, architecture) grid.
    experiments::optimization_experiment(&cfg, InputSet::FreqCache, Metric::Energy)
        .expect("tab-opt/E");
}

fn temp_results_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mimo_parallel_determinism_{}_{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn csv_output_is_byte_identical_across_job_counts() {
    let serial_dir = temp_results_dir("j1");
    let parallel_dir = temp_results_dir("j4");
    run_suite(1, &serial_dir);
    run_suite(4, &parallel_dir);

    let files = ["fig06_weights.csv", "opt_2in_k1.csv"];
    for name in files {
        let serial = fs::read(serial_dir.join(name))
            .unwrap_or_else(|e| panic!("missing {name} from serial run: {e}"));
        let parallel = fs::read(parallel_dir.join(name))
            .unwrap_or_else(|e| panic!("missing {name} from parallel run: {e}"));
        assert!(!serial.is_empty(), "{name} is empty");
        assert_eq!(
            serial, parallel,
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }

    let _ = fs::remove_dir_all(&serial_dir);
    let _ = fs::remove_dir_all(&parallel_dir);
}

#[test]
fn design_cache_dedupes_repeated_experiments() {
    // Running the same optimization experiment twice through one config
    // must hit the cache for every design artifact the second time.
    let dir = temp_results_dir("cache");
    let mut cfg = test_config(1, &dir);
    cfg.emit = false;
    experiments::optimization_experiment(&cfg, InputSet::FreqCache, Metric::Energy).expect("pass1");
    let (_, misses_after_first) = cfg.cache.stats();
    experiments::optimization_experiment(&cfg, InputSet::FreqCache, Metric::Energy).expect("pass2");
    let (hits, misses) = cfg.cache.stats();
    assert_eq!(
        misses, misses_after_first,
        "second pass must not recompute any design"
    );
    assert!(hits >= 4, "baseline/mimo/ranking/decoupled should all hit");
    let _ = fs::remove_dir_all(&dir);
}
