//! Integration tests for the fleet runtime driven by a real synthesized
//! MIMO controller (the `fleet_scale` deployment model in miniature).

use mimo_exp::setup;
use mimo_fleet::{ArbitrationPolicy, FleetConfig, FleetRunner};
use mimo_sim::InputSet;

fn run(workers: usize, policy: ArbitrationPolicy, cap_w: f64) -> mimo_fleet::FleetStats {
    let design = setup::design_mimo(InputSet::FreqCache, 2016).expect("design");
    let cfg = FleetConfig::new(4)
        .workers(workers)
        .epochs(400)
        .policy(policy)
        .chip_power_cap(cap_w)
        .seed(2016);
    FleetRunner::with_shared_controller(cfg, &design.controller)
        .expect("fleet")
        .run()
}

#[test]
fn mimo_fleet_is_deterministic_across_worker_counts() {
    let one = run(1, ArbitrationPolicy::Proportional, 4.8);
    let many = run(4, ArbitrationPolicy::Proportional, 4.8);
    assert_eq!(one, many);
    assert_eq!(one.digest(), many.digest());
    // Deterministic fields are populated, not trivially zero.
    assert!(one.energy_j > 0.0);
    assert!(one.avg_chip_power_w > 0.0);
}

#[test]
fn tight_cap_throttles_power_below_generous_cap() {
    // Halving the chip budget must reduce what the fleet actually burns:
    // the arbiter lowers per-core references and the LQG loops follow.
    let generous = run(1, ArbitrationPolicy::Proportional, 8.0);
    let tight = run(1, ArbitrationPolicy::Proportional, 2.4);
    assert!(
        tight.avg_chip_power_w < generous.avg_chip_power_w,
        "tight {tight:?} vs generous {generous:?}"
    );
}
