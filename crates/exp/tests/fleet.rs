//! Integration tests for the fleet runtime driven by a real synthesized
//! MIMO controller (the `fleet_scale` deployment model in miniature).

use mimo_exp::setup;
use mimo_fleet::{ArbitrationPolicy, FleetConfig, FleetRunner};
use mimo_sim::fault::{FaultKind, FaultSpec};
use mimo_sim::InputSet;

fn run(workers: usize, policy: ArbitrationPolicy, cap_w: f64) -> mimo_fleet::FleetStats {
    let design = setup::design_mimo(InputSet::FreqCache, 2016).expect("design");
    let cfg = FleetConfig::new(4)
        .workers(workers)
        .epochs(400)
        .policy(policy)
        .chip_power_cap(cap_w)
        .seed(2016);
    FleetRunner::with_shared_controller(cfg, &design.controller)
        .expect("fleet")
        .run()
        .expect("validated fleet config")
}

#[test]
fn mimo_fleet_is_deterministic_across_worker_counts() {
    let one = run(1, ArbitrationPolicy::Proportional, 4.8);
    let many = run(4, ArbitrationPolicy::Proportional, 4.8);
    assert_eq!(one, many);
    assert_eq!(one.digest(), many.digest());
    // Deterministic fields are populated, not trivially zero.
    assert!(one.energy_j > 0.0);
    assert!(one.avg_chip_power_w > 0.0);
}

#[test]
fn faulted_fleet_is_deterministic_across_worker_counts() {
    // Same seed must give the same transient fault sequence — and the same
    // quarantine decisions — no matter how many workers step the cores.
    let design = setup::design_mimo(InputSet::FreqCache, 2016).expect("design");
    let run = |workers: usize| {
        let cfg = FleetConfig::new(6)
            .workers(workers)
            .epochs(300)
            .policy(ArbitrationPolicy::Proportional)
            .chip_power_cap(7.2)
            .seed(2016)
            .fault_rate(0.05);
        FleetRunner::with_shared_controller(cfg, &design.controller)
            .expect("fleet")
            .run()
            .expect("validated fleet config")
    };
    let one = run(1);
    let many = run(3);
    // PartialEq covers the quarantine bookkeeping too, so this checks the
    // fault + quarantine sequence bit for bit, not just the FP telemetry.
    assert_eq!(one, many);
    assert_eq!(one.digest(), many.digest());
    assert!(
        one.fault_epochs > 0,
        "rate 0.05 over 1800 core-epochs: {one:?}"
    );
}

#[test]
fn nan_sensor_cores_are_quarantined_and_budget_is_respected() {
    // The issue's acceptance scenario: a 16-core fleet where four cores'
    // IPS sensors go permanently NaN mid-run. The fleet must complete,
    // flag exactly those cores as quarantined, and keep chip power within
    // the arbiter's budget.
    let design = setup::design_mimo(InputSet::FreqCache, 2016).expect("design");
    let bad_cores = [1, 5, 9, 13];
    let mut cfg = FleetConfig::new(16)
        .workers(4)
        .epochs(300)
        .policy(ArbitrationPolicy::Proportional)
        .chip_power_cap(19.2)
        .seed(2016);
    for &core in &bad_cores {
        cfg = cfg.core_fault(
            core,
            FaultSpec {
                kind: FaultKind::NanMeasurement { channel: 0 },
                start_epoch: 40,
                duration: u64::MAX,
            },
        );
    }
    let stats = FleetRunner::with_shared_controller(cfg, &design.controller)
        .expect("fleet")
        .run()
        .expect("validated fleet config");
    assert_eq!(stats.quarantined_cores, bad_cores.len(), "{stats:?}");
    for c in &stats.per_core {
        let expected = bad_cores.contains(&c.core);
        assert_eq!(c.quarantined, expected, "core {}: {c:?}", c.core);
        if expected {
            assert!(c.fault_epochs > 0, "{c:?}");
            assert!(c.quarantine_epoch.is_some(), "{c:?}");
        }
    }
    assert!(stats.fault_epochs > 0);
    // The arbiter's power accounting (stale quarantined readings replaced
    // by the pinned floor) must keep the chip within budget...
    assert!(
        stats.avg_chip_power_w <= stats.chip_cap_w,
        "avg power {} exceeds cap {}",
        stats.avg_chip_power_w,
        stats.chip_cap_w
    );
    // ...and so must the ground-truth energy-derived power, up to the slack
    // a blind core can leak: a quarantined plant's physical minimum may sit
    // above the floor target its flying-blind fallback is asked to hold.
    let actual: f64 = stats.per_core.iter().map(|c| c.avg_power_w).sum();
    assert!(
        actual <= 1.05 * stats.chip_cap_w,
        "actual power {} exceeds cap {} by more than 5%",
        actual,
        stats.chip_cap_w
    );
}

#[test]
fn tight_cap_throttles_power_below_generous_cap() {
    // Halving the chip budget must reduce what the fleet actually burns:
    // the arbiter lowers per-core references and the LQG loops follow.
    let generous = run(1, ArbitrationPolicy::Proportional, 8.0);
    let tight = run(1, ArbitrationPolicy::Proportional, 2.4);
    assert!(
        tight.avg_chip_power_w < generous.avg_chip_power_w,
        "tight {tight:?} vs generous {generous:?}"
    );
}
