//! Integration tests for the declarative spec layer: every checked-in
//! spec round-trips through parse → validate → lower, the embedded alias
//! copies are byte-identical to the `specs/` files, and spec-driven runs
//! reproduce the experiment functions' CSVs byte-identically at any
//! worker count.

use std::fs;
use std::path::{Path, PathBuf};

use mimo_exp::experiments::{self, ExpConfig};
use mimo_exp::report::ResultsDir;
use mimo_exp::spec::{self, RunOverrides};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A unique, throwaway results directory per test.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mimo-spec-it-{label}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn quick_cfg(jobs: usize, out: &Path) -> ExpConfig {
    let mut cfg = ExpConfig::full();
    cfg.tracking_epochs = 50;
    cfg.jobs = jobs;
    cfg.results = ResultsDir::new(out);
    cfg
}

#[test]
fn every_checked_in_spec_loads_validates_and_lowers() {
    let dir = repo_root().join("specs");
    let mut count = 0usize;
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("specs/ directory")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    entries.sort();
    for path in entries {
        let s = spec::load(&path).unwrap_or_else(|e| panic!("{e}"));
        spec::check(&s).unwrap_or_else(|e| panic!("{}", spec::format_error(&path, &e)));
        count += 1;
    }
    assert_eq!(
        count,
        spec::embedded::EMBEDDED.len(),
        "every checked-in spec must have an embedded alias (and vice versa)"
    );
}

#[test]
fn embedded_specs_are_byte_identical_to_the_checked_in_files() {
    for e in &spec::embedded::EMBEDDED {
        let on_disk = fs::read_to_string(repo_root().join(e.path))
            .unwrap_or_else(|err| panic!("{}: {err}", e.path));
        assert_eq!(on_disk, e.text, "{} drifted from its embedded copy", e.path);
    }
}

/// The tentpole guarantee: running a spec and calling the experiment
/// function directly produce the same bytes, and the spec run is
/// worker-count invariant.
#[test]
fn spec_runs_reproduce_direct_experiment_csvs_at_jobs_1_and_2() {
    let cases: &[(&str, &str)] = &[
        ("fig06", "fig06_weights.csv"),
        ("fleet-scale", "fleet_scale.csv"),
        ("cluster-scale", "cluster_scale.csv"),
    ];
    for (alias, csv) in cases {
        let embedded = spec::embedded::by_alias(alias).expect(alias);
        let s = spec::parse_str(embedded.text).unwrap_or_else(|e| panic!("{alias}: {e}"));

        let direct_dir = scratch(&format!("direct-{alias}"));
        let cfg = quick_cfg(1, &direct_dir);
        match *alias {
            "fig06" => experiments::fig06(&cfg).map(drop).expect("fig06"),
            "fleet-scale" => experiments::fleet_scale(&cfg)
                .map(drop)
                .expect("fleet_scale"),
            "cluster-scale" => experiments::cluster_scale(&cfg, None)
                .map(drop)
                .expect("cluster_scale"),
            _ => unreachable!(),
        }
        let golden = fs::read(direct_dir.join(csv)).unwrap_or_else(|e| panic!("{csv}: {e}"));

        for jobs in [1usize, 2] {
            let spec_dir = scratch(&format!("spec-{alias}-j{jobs}"));
            let cfg = quick_cfg(jobs, &spec_dir);
            spec::run_spec(&cfg, &s, &RunOverrides::default())
                .unwrap_or_else(|e| panic!("{alias} via spec at jobs={jobs}: {e}"));
            let got = fs::read(spec_dir.join(csv)).unwrap_or_else(|e| panic!("{csv}: {e}"));
            assert_eq!(
                got, golden,
                "{alias}: spec-driven CSV differs from the direct run at jobs={jobs}"
            );
            let _ = fs::remove_dir_all(&spec_dir);
        }
        let _ = fs::remove_dir_all(&direct_dir);
    }
}

/// The spec-only scenarios execute end to end at a reduced epoch count:
/// full-scale assertions are epoch-gated (skipped, not failed) and the
/// invariance re-runs still byte-match.
#[test]
fn spec_only_scenarios_run_with_an_epoch_override() {
    for (alias, csv) in [
        ("phase-step", "phase_step.csv"),
        ("cluster-fault", "cluster_fault.csv"),
    ] {
        let embedded = spec::embedded::by_alias(alias).expect(alias);
        let s = spec::parse_str(embedded.text).unwrap_or_else(|e| panic!("{alias}: {e}"));
        let dir = scratch(&format!("scenario-{alias}"));
        let cfg = quick_cfg(1, &dir);
        let ov = RunOverrides {
            epochs: Some(120),
            ..RunOverrides::default()
        };
        spec::run_spec(&cfg, &s, &ov).unwrap_or_else(|e| panic!("{alias}: {e}"));
        assert!(dir.join(csv).is_file(), "{alias} must write {csv}");
        assert!(
            !dir.join(".spec-invariant").exists(),
            "invariance scratch runs must be cleaned up"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
