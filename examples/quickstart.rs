//! Quickstart: run the full Figure 3 design flow against the simulated
//! processor and track the paper's dual (IPS, power) references.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mimo_arch::core::design::DesignFlow;
use mimo_arch::core::governor::{Governor, MimoGovernor};
use mimo_arch::linalg::Vector;
use mimo_arch::sim::{InputSet, Plant, ProcessorBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the training plants (the paper's four-application set).
    let mut training: Vec<_> = ["sjeng", "gobmk", "leslie3d", "namd"]
        .iter()
        .enumerate()
        .map(|(k, app)| {
            ProcessorBuilder::new()
                .app(app)
                .seed(k as u64)
                .input_set(InputSet::FreqCache)
                .build()
        })
        .collect::<Result<_, _>>()?;

    // 2. Identify a model and synthesize the MIMO LQG controller.
    let flow = DesignFlow::two_input();
    let result = flow.run_multi(training.iter_mut())?;
    println!(
        "identified a dimension-{} model from {} samples",
        result.model.state_dim(),
        result.training_samples
    );

    // 3. Validate on held-out applications, set uncertainty guardbands,
    //    and run Robust Stability Analysis.
    let mut validation: Vec<_> = ["h264ref", "tonto"]
        .iter()
        .map(|app| {
            ProcessorBuilder::new()
                .app(app)
                .seed(99)
                .input_set(InputSet::FreqCache)
                .build()
        })
        .collect::<Result<_, _>>()?;
    let validated = flow.validate(result, validation.iter_mut())?;
    println!(
        "guardbands: {:.0}% IPS / {:.0}% power; robust = {} (peak gain {:.2})",
        validated.guardbands[0] * 100.0,
        validated.guardbands[1] * 100.0,
        validated.rsa.robust,
        validated.rsa.peak_weighted_gain,
    );

    // 4. Deploy: track (2.8 BIPS, 1.9 W) on a production application.
    let mut governor = MimoGovernor::new(validated.controller);
    let targets = Vector::from_slice(&[2.8, 1.9]);
    governor.set_targets(&targets);
    let mut cpu = ProcessorBuilder::new()
        .app("astar")
        .seed(7)
        .input_set(InputSet::FreqCache)
        .build()?;
    let mut y = Vector::from_slice(&[1.0, 1.0]);
    for epoch in 0..2000 {
        let u = governor.decide(&y, cpu.phase_changed());
        y = cpu.apply(&u);
        if epoch % 400 == 0 {
            println!(
                "epoch {epoch:>4}: freq {:.1} GHz, L2 {} ways → {:.2} BIPS, {:.2} W",
                u[0], u[1] as usize, y[0], y[1]
            );
        }
    }
    let t = cpu.totals();
    println!(
        "ran {:.2} G instructions, avg {:.2} BIPS at {:.2} W",
        t.instructions_g,
        t.avg_bips(),
        t.avg_power()
    );
    Ok(())
}
