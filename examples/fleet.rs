//! Fleet: replicate one synthesized controller across a 16-core chip with a
//! shared power budget, and show that results do not depend on the worker
//! count (the README's "Many-core fleets" section, runnable).
//!
//! ```text
//! cargo run --release --example fleet
//! ```

use mimo_arch::core::design::DesignFlow;
use mimo_arch::fleet::{ArbitrationPolicy, FleetConfig, FleetRunner};
use mimo_arch::sim::{InputSet, ProcessorBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize one controller, exactly as for a single core.
    let mut plant = ProcessorBuilder::new()
        .app("namd")
        .input_set(InputSet::FreqCache)
        .build()?;
    let controller = DesignFlow::two_input().run(&mut plant)?.into_controller();

    // 2. Replicate it across 16 cores under a 19.2 W chip cap.
    let cfg = || {
        FleetConfig::new(16)
            .epochs(1000)
            .chip_power_cap(19.2)
            .policy(ArbitrationPolicy::Proportional)
    };
    let stats = FleetRunner::with_shared_controller(cfg().workers(4), &controller)?.run()?;
    println!(
        "16 cores, 4 workers: chip power {:.2} W avg / {:.2} W peak, \
         {:.1}% IPS err, {:.0} epochs/s",
        stats.avg_chip_power_w,
        stats.peak_chip_power_w,
        stats.agg_ips_err_pct,
        stats.epochs_per_sec
    );

    // 3. Same fleet, one worker: bit-identical science.
    let serial = FleetRunner::with_shared_controller(cfg().workers(1), &controller)?.run()?;
    assert_eq!(serial, stats, "results must not depend on the worker count");
    println!(
        "1 worker replay: digest {:016x} == {:016x}, deterministic",
        serial.digest(),
        stats.digest()
    );
    Ok(())
}
