//! Fast Optimization Leveraging Tracking (§V): minimize Energy×Delay by
//! hill-climbing in the small (IPS, power) *target* space while the MIMO
//! controller realizes each trial point — no low-level configuration
//! search needed.
//!
//! ```text
//! cargo run --release --example energy_tuner
//! ```

use mimo_arch::core::governor::{FixedGovernor, MimoGovernor};
use mimo_arch::core::optimizer::Metric;
use mimo_arch::exp::runner::{run_optimization, run_self_directed};
use mimo_arch::exp::setup;
use mimo_arch::linalg::Vector;
use mimo_arch::sim::InputSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let metric = Metric::EnergyDelay;
    let budget_g = 1.0; // billions of instructions of real work per run

    // The Baseline architecture: inputs fixed at the training-set optimum.
    let baseline_cfg = setup::baseline_config(InputSet::FreqCache, metric, 1);
    println!(
        "baseline (fixed): {:.1} GHz, L2 {} ways",
        baseline_cfg.freq_ghz, baseline_cfg.l2_ways
    );

    let mimo = setup::design_mimo(InputSet::FreqCache, 1)?;

    for app in ["povray", "milc", "lbm"] {
        // Baseline run.
        let mut base_gov = FixedGovernor::new(Vector::from_slice(
            &baseline_cfg.to_actuation(InputSet::FreqCache),
        ));
        let mut cpu = setup::plant(app, InputSet::FreqCache, 11);
        let base = run_self_directed(&mut base_gov, &mut cpu, metric, budget_g);

        // MIMO + optimizer run on an identical plant.
        let mut gov = MimoGovernor::new(mimo.controller.clone());
        let mut cpu = setup::plant(app, InputSet::FreqCache, 11);
        let tuned = run_optimization(&mut gov, &mut cpu, metric, budget_g);

        println!(
            "{app:>8}: E×D {:.4} (baseline {:.4}) → {:+.1}%  [{:.2} BIPS avg, {:.2} J]",
            tuned.ed_product,
            base.ed_product,
            (tuned.ed_product / base.ed_product - 1.0) * 100.0,
            tuned.instructions_g / tuned.time_s,
            tuned.energy_j,
        );
    }
    Ok(())
}
