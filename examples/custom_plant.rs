//! Bring your own plant: the controller layer is generic over the
//! [`Plant`] trait, so the same identify → synthesize → track pipeline
//! works on any system with actuators and sensors — here, a toy
//! two-tank "thermal" model unrelated to the processor simulator.
//!
//! ```text
//! cargo run --release --example custom_plant
//! ```

use mimo_arch::core::design::DesignFlow;
use mimo_arch::core::weights::WeightSet;
use mimo_arch::linalg::Vector;
use mimo_arch::sim::Plant;

/// A two-input, two-output thermal plant: two heater duties (0..=10, in
/// discrete steps) drive two coupled temperatures with first-order lags.
struct ThermalPlant {
    temps: [f64; 2],
    noise_state: u64,
}

impl ThermalPlant {
    fn new() -> Self {
        ThermalPlant {
            temps: [20.0, 20.0],
            noise_state: 0x9E3779B97F4A7C15,
        }
    }

    fn noise(&mut self) -> f64 {
        // xorshift pseudo-noise in [-0.5, 0.5).
        self.noise_state ^= self.noise_state << 13;
        self.noise_state ^= self.noise_state >> 7;
        self.noise_state ^= self.noise_state << 17;
        (self.noise_state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

impl Plant for ThermalPlant {
    fn num_inputs(&self) -> usize {
        2
    }

    fn num_outputs(&self) -> usize {
        2
    }

    fn input_grids(&self) -> Vec<Vec<f64>> {
        // Heater duty levels 0..=10.
        let grid: Vec<f64> = (0..=10).map(f64::from).collect();
        vec![grid.clone(), grid]
    }

    fn apply(&mut self, u: &Vector) -> Vector {
        // Coupled first-order dynamics: each heater mostly warms its own
        // tank but leaks into the other.
        let ambient = 20.0;
        let w0 = 2.0 * u[0] + 0.6 * u[1];
        let w1 = 0.5 * u[0] + 1.5 * u[1];
        self.temps[0] += 0.08 * (ambient + w0 - self.temps[0]);
        self.temps[1] += 0.06 * (ambient + w1 - self.temps[1]);
        let (n0, n1) = (self.noise(), self.noise());
        Vector::from_slice(&[self.temps[0] + n0, self.temps[1] + n1])
    }

    fn observe(&mut self) -> Vector {
        // A sensor read without advancing the dynamics.
        let (n0, n1) = (self.noise(), self.noise());
        Vector::from_slice(&[self.temps[0] + n0, self.temps[1] + n1])
    }

    fn phase_changed(&self) -> bool {
        false
    }

    fn reset(&mut self) {
        self.temps = [20.0, 20.0];
        self.noise_state = 0x9E3779B97F4A7C15;
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Weights: both temperatures equally important; heater 0 is cheaper
    // to move than heater 1.
    let mut flow = DesignFlow::two_input().with_weights(WeightSet {
        label: "thermal".into(),
        output: vec![1.0, 1.0],
        input: vec![0.001, 0.002],
    });
    // This plant is quiet and linear: the processor-calibrated input
    // weight scale would make the controller needlessly timid.
    flow.input_weight_scale = 1e2;

    let mut plant = ThermalPlant::new();
    let mut controller = flow.run(&mut plant)?.into_controller();
    println!(
        "identified a dimension-{} model of the thermal plant",
        controller.model().state_dim()
    );

    // Track 35 °C and 30 °C.
    controller.set_reference(&Vector::from_slice(&[35.0, 30.0]));
    plant.reset();
    let mut y = Vector::from_slice(&[20.0, 20.0]);
    for epoch in 0..400 {
        let u = controller.step(&y);
        y = plant.apply(&u);
        if epoch % 80 == 0 {
            println!(
                "epoch {epoch:>3}: duties ({:.0}, {:.0}) → temps ({:.1}, {:.1}) °C",
                u[0], u[1], y[0], y[1]
            );
        }
    }
    let err0 = (y[0] - 35.0_f64).abs();
    let err1 = (y[1] - 30.0_f64).abs();
    println!("final tracking error: ({err0:.2}, {err1:.2}) °C");
    Ok(())
}
