//! Time-varying tracking (§V "Time-Varying Tracking"): a battery-aware
//! agent lowers the (IPS, power) targets as the modeled charge drains,
//! and the MIMO controller re-tracks each new reference.
//!
//! ```text
//! cargo run --release --example battery_aware
//! ```

use mimo_arch::core::governor::MimoGovernor;
use mimo_arch::exp::qoe::BatterySchedule;
use mimo_arch::exp::runner::run_schedule;
use mimo_arch::exp::setup;
use mimo_arch::sim::InputSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Design the controller once (identification + synthesis + RSA).
    let design = setup::design_mimo(InputSet::FreqCache, 42)?;
    let mut governor = MimoGovernor::new(design.controller);

    // Build the battery schedule: 1 J supply, targets re-planned every
    // 2000 epochs (100 ms), QoE-style rolloff below half charge.
    let schedule = BatterySchedule::paper_default().schedule(10_000);
    println!("battery plan ({} reference steps):", schedule.len());
    for step in &schedule {
        println!(
            "  from epoch {:>5}: track {:.2} BIPS at {:.2} W",
            step.epoch, step.targets[0], step.targets[1]
        );
    }

    // Run it on a cache-sensitive production app.
    let mut cpu = setup::plant("milc", InputSet::FreqCache, 7);
    let trace = run_schedule(&mut governor, &mut cpu, &schedule, 10_000);

    // Summarize tracking quality per reference segment.
    for (i, step) in schedule.iter().enumerate() {
        let end = schedule
            .get(i + 1)
            .map_or(trace.outputs.len(), |s| s.epoch.min(trace.outputs.len()));
        // Skip the first 200 epochs of each segment (re-convergence).
        let start = (step.epoch + 200).min(end);
        if start >= end {
            continue;
        }
        let n = (end - start) as f64;
        let avg_ips: f64 = trace.outputs[start..end].iter().map(|y| y[0]).sum::<f64>() / n;
        let avg_p: f64 = trace.outputs[start..end].iter().map(|y| y[1]).sum::<f64>() / n;
        println!(
            "segment {i}: target ({:.2}, {:.2}) → achieved ({avg_ips:.2}, {avg_p:.2})",
            step.targets[0], step.targets[1]
        );
    }
    println!(
        "overall IPS tracking error: {:.1}%",
        trace.ips_tracking_error_pct()
    );
    Ok(())
}
