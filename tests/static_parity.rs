//! End-to-end static-vs-dynamic parity on real synthesized controllers.
//!
//! The linalg property tests pin the kernels shape by shape; these tests
//! pin the whole stack: controllers produced by the actual design flow
//! (identification → weights → LQR/Kalman → guardbands) are stepped on
//! both storage paths through identical measurement sequences and must
//! agree to the bit at every epoch. Covers both deployed MIMO shapes —
//! two-input (StaticStore<2, 2, 4, 8>) and three-input
//! (StaticStore<3, 2, 5, 10>) — plus the governor-level dispatch.

use mimo_arch::core::governor::{fast_governor, Governor, MimoGovernor};
use mimo_arch::core::{LqgController, StaticStore};
use mimo_arch::exp::setup;
use mimo_arch::linalg::Vector;
use mimo_arch::sim::InputSet;

/// Deterministic, lightly chaotic measurement sequence in physical units.
fn measurement(t: usize, outputs: usize) -> Vector {
    Vector::from_fn(outputs, |c| {
        let x = (t as f64) * 0.173 + (c as f64) * 1.7;
        2.0 + x.sin() + 0.3 * (3.1 * x).cos()
    })
}

fn assert_steps_match<const NU: usize, const NY: usize, const NX: usize, const NZ: usize>(
    mut dynamic: LqgController,
    epochs: usize,
) {
    let nu = dynamic.num_inputs();
    let ny = dynamic.num_outputs();
    let mut fixed = dynamic
        .with_storage::<StaticStore<NU, NY, NX, NZ>>()
        .expect("const dims match the architecture");
    let targets = Vector::from_fn(ny, |c| 2.4 - 0.3 * c as f64);
    dynamic.set_reference(&targets);
    fixed.set_reference(&targets);
    let mut u_d = Vector::zeros(nu);
    let mut u_s = Vector::zeros(nu);
    for t in 0..epochs {
        let y = measurement(t, ny);
        dynamic.step_into(&y, &mut u_d);
        fixed.step_into(&y, &mut u_s);
        for k in 0..nu {
            assert_eq!(
                u_d[k].to_bits(),
                u_s[k].to_bits(),
                "epoch {t} channel {k}: dynamic {} vs static {}",
                u_d[k],
                u_s[k]
            );
        }
    }
}

#[test]
fn two_input_architecture_parity() {
    let ctrl = setup::design_mimo(InputSet::FreqCache, 2)
        .expect("design")
        .controller;
    assert_eq!(
        (
            ctrl.num_inputs(),
            ctrl.num_outputs(),
            ctrl.model().state_dim()
        ),
        (2, 2, 4),
        "two-input architecture shape drifted; update StaticStore dims"
    );
    assert_steps_match::<2, 2, 4, 8>(ctrl, 500);
}

#[test]
fn three_input_architecture_parity() {
    let ctrl = setup::design_mimo(InputSet::FreqCacheRob, 3)
        .expect("design")
        .controller;
    assert_eq!(
        (
            ctrl.num_inputs(),
            ctrl.num_outputs(),
            ctrl.model().state_dim()
        ),
        (3, 2, 5),
        "three-input architecture shape drifted; update StaticStore dims"
    );
    assert_steps_match::<3, 2, 5, 10>(ctrl, 500);
}

#[test]
fn fast_governor_matches_dynamic_governor() {
    let ctrl = setup::design_mimo(InputSet::FreqCache, 4)
        .expect("design")
        .controller;
    let mut fast = fast_governor(ctrl.clone());
    let mut dynamic = MimoGovernor::new(ctrl);
    let targets = Vector::from_slice(&[2.8, 1.9]);
    fast.set_targets(&targets);
    dynamic.set_targets(&targets);
    let mut u_f = Vector::zeros(2);
    let mut u_d = Vector::zeros(2);
    for t in 0..400 {
        let y = measurement(t, 2);
        fast.decide_into(&y, false, &mut u_f).expect("finite y");
        dynamic.decide_into(&y, false, &mut u_d).expect("finite y");
        assert_eq!(u_f[0].to_bits(), u_d[0].to_bits(), "epoch {t}");
        assert_eq!(u_f[1].to_bits(), u_d[1].to_bits(), "epoch {t}");
    }
    assert_eq!(fast.name(), "MIMO");
}
