//! Bit-exactness pins for the epoch-engine refactor.
//!
//! These values were captured from the pre-engine runners (PR 1) and must
//! never drift: the `EpochLoop` engine, the in-place linalg kernels, and
//! the scratch-workspace LQG step are all required to reproduce the exact
//! f64 bit patterns of the original per-runner loops for the same seeds.

use std::sync::OnceLock;

use mimo_arch::core::governor::{FixedGovernor, MimoGovernor};
use mimo_arch::core::optimizer::Metric;
use mimo_arch::core::LqgController;
use mimo_arch::exp::runner::{
    run_optimization, run_schedule, run_self_directed, run_tracking, ReferenceStep,
};
use mimo_arch::exp::setup;
use mimo_arch::fleet::{ArbitrationPolicy, FleetConfig, FleetRunner};
use mimo_arch::linalg::Vector;
use mimo_arch::sim::InputSet;

/// Order-dependent digest of f64 bit patterns — the shared workspace
/// reduction (`mimo_core::digest`), which is itself part of the pin: if
/// the helper's mix ever drifted, every golden below would move.
fn bits(values: &[f64]) -> u64 {
    mimo_arch::core::digest::digest_f64(values)
}

/// One shared MIMO design (seed 2, two-input) for every golden below —
/// the design flow is deterministic, so this is itself part of the pin.
fn controller() -> &'static LqgController {
    static CTRL: OnceLock<LqgController> = OnceLock::new();
    CTRL.get_or_init(|| {
        setup::design_mimo(InputSet::FreqCache, 2)
            .expect("design")
            .controller
    })
}

#[test]
fn golden_tracking_fixed() {
    let mut gov = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
    let mut plant = setup::plant("namd", InputSet::FreqCache, 41);
    let targets = Vector::from_slice(&[2.5, 2.0]);
    let s = run_tracking(&mut gov, &mut plant, &targets, 600, false);
    assert_eq!(bits(&s.avg_err_pct), 0xe1c21b607c8bacf0);
    assert_eq!(bits(s.final_outputs.as_slice()), 0xaa7f0b05608dddd0);
    assert_eq!(s.steady_epoch, vec![Some(0), Some(0)]);
}

#[test]
fn golden_tracking_mimo() {
    let mut gov = MimoGovernor::new(controller().clone());
    let mut plant = setup::plant("astar", InputSet::FreqCache, 7);
    let targets = Vector::from_slice(&[3.0, 1.9]);
    let s = run_tracking(&mut gov, &mut plant, &targets, 1500, true);
    assert_eq!(bits(&s.avg_err_pct), 0xdbdb7811defd8872);
    assert_eq!(bits(s.final_outputs.as_slice()), 0xa8c96a625a46b411);
    let trace = s.trace.expect("trace kept");
    let flat: Vec<f64> = trace.iter().flat_map(|v| v.iter().copied()).collect();
    assert_eq!(bits(&flat), 0x3dc97648fabb448f);
}

#[test]
fn golden_schedule_mimo() {
    let mut gov = MimoGovernor::new(controller().clone());
    let mut plant = setup::plant("gamess", InputSet::FreqCache, 11);
    let schedule = vec![
        ReferenceStep {
            epoch: 0,
            targets: Vector::from_slice(&[2.0, 1.5]),
        },
        ReferenceStep {
            epoch: 150,
            targets: Vector::from_slice(&[3.0, 1.9]),
        },
        ReferenceStep {
            epoch: 300,
            targets: Vector::from_slice(&[1.2, 1.0]),
        },
    ];
    let t = run_schedule(&mut gov, &mut plant, &schedule, 450);
    let flat: Vec<f64> = t.outputs.iter().flat_map(|v| v.iter().copied()).collect();
    assert_eq!(bits(&flat), 0x356ec10591042ad2);
    let refs: Vec<f64> = t
        .references
        .iter()
        .flat_map(|v| v.iter().copied())
        .collect();
    assert_eq!(bits(&refs), 0x2e8b484c5f4b5c1d);
    assert_eq!(t.ips_tracking_error_pct().to_bits(), 0x402bfc60260052cb);
}

#[test]
fn golden_optimization_mimo() {
    let mut gov = MimoGovernor::new(controller().clone());
    let mut plant = setup::plant("gamess", InputSet::FreqCache, 6);
    let s = run_optimization(&mut gov, &mut plant, Metric::EnergyDelay, 0.05);
    assert_eq!(
        bits(&[s.ed_product, s.energy_j, s.time_s, s.instructions_g]),
        0xaf7fe5b59bf687fd
    );
}

#[test]
fn golden_self_directed_fixed() {
    let mut gov = FixedGovernor::new(Vector::from_slice(&[1.3, 6.0]));
    let mut plant = setup::plant("astar", InputSet::FreqCache, 9);
    let s = run_self_directed(&mut gov, &mut plant, Metric::Energy, 0.02);
    assert_eq!(
        bits(&[s.ed_product, s.energy_j, s.time_s, s.instructions_g]),
        0x911244ad30158b87
    );
}

#[test]
fn golden_fleet_digest() {
    let cfg = FleetConfig::new(4)
        .workers(2)
        .epochs(150)
        .policy(ArbitrationPolicy::Proportional)
        .seed(7);
    let stats = FleetRunner::with_shared_controller(cfg, controller())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(stats.digest(), 0x19add60c38adeb17);
    let per_core: Vec<f64> = stats
        .per_core
        .iter()
        .flat_map(|c| [c.avg_ips_err_pct, c.avg_power_err_pct, c.energy_j])
        .collect();
    assert_eq!(bits(&per_core), 0x12d0dc98e60d37d6);
}

#[test]
fn golden_one_chip_cluster_reproduces_the_fleet_digest() {
    // The two-level hierarchy must be invisible when it degenerates to a
    // single chip: same seed, same epochs, same policy → the chip's
    // FleetStats digest is the exact single-chip golden above, even though
    // a cluster arbiter re-granted the chip's cap at every exchange.
    use mimo_arch::fleet::{ClusterConfig, ClusterRunner};
    let cfg = ClusterConfig::new(1, 4)
        .epochs(150)
        .exchange_period(25)
        .policy(ArbitrationPolicy::Proportional)
        .chip_policy(ArbitrationPolicy::Proportional)
        .seed(7);
    let stats = ClusterRunner::with_shared_controller(cfg, controller())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(stats.n_chips, 1);
    assert_eq!(stats.per_chip[0].digest(), 0x19add60c38adeb17);
    let per_core: Vec<f64> = stats.per_chip[0]
        .per_core
        .iter()
        .flat_map(|c| [c.avg_ips_err_pct, c.avg_power_err_pct, c.energy_j])
        .collect();
    assert_eq!(bits(&per_core), 0x12d0dc98e60d37d6);
}
