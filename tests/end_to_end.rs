//! Cross-crate integration tests: the full identify → weight → synthesize
//! → validate → deploy pipeline against the simulated processor.

use mimo_arch::core::design::DesignFlow;
use mimo_arch::core::governor::{FixedGovernor, Governor, MimoGovernor};
use mimo_arch::exp::runner::run_tracking;
use mimo_arch::exp::setup;
use mimo_arch::linalg::Vector;
use mimo_arch::sim::{InputSet, Plant, ProcessorBuilder};

#[test]
fn design_flow_produces_a_robust_two_input_controller() {
    let design = setup::design_mimo(InputSet::FreqCache, 101).expect("design");
    assert!(design.rsa.robust, "RSA must pass");
    assert!(design.rsa.nominal_radius < 1.0);
    assert_eq!(design.controller.num_inputs(), 2);
    assert_eq!(design.controller.num_outputs(), 2);
    // Table III's state dimension.
    assert_eq!(design.model.state_dim(), 4);
    // Guardbands live in a sane range.
    for g in &design.guardbands {
        assert!((0.05..=0.8).contains(g), "guardband {g}");
    }
}

#[test]
fn mimo_tracks_the_power_reference_on_a_responsive_app() {
    let design = setup::design_mimo(InputSet::FreqCache, 102).expect("design");
    let mut gov = MimoGovernor::new(design.controller);
    let mut plant = setup::plant("wrf", InputSet::FreqCache, 103);
    let targets = Vector::from_slice(&[2.8, 1.9]);
    let stats = run_tracking(&mut gov, &mut plant, &targets, 3000, false);
    // Power is the prioritized output (1000:1): it must track tightly.
    assert!(
        stats.avg_err_pct[1] < 10.0,
        "power error {:?}",
        stats.avg_err_pct
    );
    // IPS lands in the feasible neighborhood.
    assert!(stats.avg_err_pct[0] < 30.0, "{:?}", stats.avg_err_pct);
}

#[test]
fn mimo_saturates_gracefully_on_a_non_responsive_app() {
    let design = setup::design_mimo(InputSet::FreqCache, 104).expect("design");
    let mut gov = MimoGovernor::new(design.controller);
    let mut plant = setup::plant("mcf", InputSet::FreqCache, 105);
    let targets = Vector::from_slice(&[2.8, 1.9]);
    let stats = run_tracking(&mut gov, &mut plant, &targets, 2000, false);
    // The target is unreachable; the controller must stay stable and
    // produce finite errors (no windup blowup).
    assert!(stats.final_outputs.all_finite());
    assert!(stats.avg_err_pct[0] > 30.0, "mcf cannot reach 2.8 BIPS");
    assert!(stats.avg_err_pct[0] < 100.0);
}

#[test]
fn mimo_beats_an_uncontrolled_config_on_weighted_tracking_cost() {
    let design = setup::design_mimo(InputSet::FreqCache, 106).expect("design");
    let mut gov = MimoGovernor::new(design.controller);
    let targets = Vector::from_slice(&[2.8, 1.9]);
    let mut plant = setup::plant("sphinx3", InputSet::FreqCache, 107);
    let mimo = run_tracking(&mut gov, &mut plant, &targets, 3000, false);

    // A deliberately wrong fixed configuration.
    let mut fixed = FixedGovernor::new(Vector::from_slice(&[0.6, 2.0]));
    let mut plant = setup::plant("sphinx3", InputSet::FreqCache, 107);
    let base = run_tracking(&mut fixed, &mut plant, &targets, 3000, false);

    // Power-priority weighted cost, matching the Table III objective.
    let cost = |s: &mimo_arch::exp::runner::TrackingStats| {
        (1000.0 * (s.avg_err_pct[1] / 100.0).powi(2) + (s.avg_err_pct[0] / 100.0).powi(2)).sqrt()
    };
    assert!(
        cost(&mimo) < cost(&base),
        "MIMO {:?} vs fixed {:?}",
        mimo.avg_err_pct,
        base.avg_err_pct
    );
}

#[test]
fn three_input_controller_actuates_the_rob() {
    let design = setup::design_mimo(InputSet::FreqCacheRob, 108).expect("design");
    let mut gov = MimoGovernor::new(design.controller);
    gov.set_targets(&Vector::from_slice(&[1.5, 1.0]));
    let mut plant = setup::plant("lbm", InputSet::FreqCacheRob, 109);
    let mut y = Vector::from_slice(&[1.0, 1.0]);
    let mut rob_values = std::collections::BTreeSet::new();
    for _ in 0..1500 {
        let u = gov.decide(&y, plant.phase_changed());
        assert_eq!(u.len(), 3);
        rob_values.insert(u[2] as i64);
        y = plant.apply(&u);
    }
    // The ROB actuator is really exercised (visits at least two settings).
    assert!(rob_values.len() >= 2, "ROB never moved: {rob_values:?}");
}

#[test]
fn sensor_noise_spike_does_not_destabilize_the_loop() {
    let design = setup::design_mimo(InputSet::FreqCache, 110).expect("design");
    let mut gov = MimoGovernor::new(design.controller);
    gov.set_targets(&Vector::from_slice(&[2.8, 1.9]));
    let mut plant = setup::plant("astar", InputSet::FreqCache, 111);
    let mut y = Vector::from_slice(&[1.0, 1.0]);
    for t in 0..2000 {
        // Inject gross sensor glitches every 500 epochs.
        let y_meas = if t % 500 == 250 {
            Vector::from_slice(&[y[0] * 3.0, y[1] * 0.2])
        } else {
            y.clone()
        };
        let u = gov.decide(&y_meas, plant.phase_changed());
        y = plant.apply(&u);
        assert!(y.all_finite());
        assert!(y[1] < 5.0, "power ran away after a glitch");
    }
}

#[test]
fn identification_is_reproducible_per_seed() {
    let run = |seed| {
        let mut plant = ProcessorBuilder::new()
            .app("namd")
            .seed(seed)
            .input_set(InputSet::FreqCache)
            .build()
            .unwrap();
        let result = DesignFlow::two_input().run(&mut plant).unwrap();
        result.model.a().as_slice().to_vec()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn facade_reexports_are_usable() {
    // The mimo_arch facade exposes every layer.
    let v = mimo_arch::linalg::Vector::from_slice(&[1.0]);
    assert_eq!(v.len(), 1);
    let grids = mimo_arch::sim::InputSet::FreqCache.grids();
    assert_eq!(grids.len(), 2);
    let m = mimo_arch::core::optimizer::Metric::EnergyDelay;
    assert_eq!(m.exponent(), 2);
}
