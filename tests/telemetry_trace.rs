//! The telemetry acceptance scenario: a ring-buffer observer on a 16-core
//! faulted fleet must produce a JSONL trace from which the quarantine
//! epoch and cause of every latched core can be recovered — and the trace
//! must be byte-identical no matter how many worker threads step the
//! fleet.

use mimo_arch::exp::setup;
use mimo_arch::fleet::{ArbitrationPolicy, FleetConfig, FleetRunner, FleetStats, FleetTelemetry};
use mimo_arch::sim::fault::{FaultKind, FaultSpec};
use mimo_arch::sim::InputSet;
use mimo_arch::telemetry::{CauseCode, TelemetryConfig};

const BAD_CORES: [usize; 4] = [1, 5, 9, 13];

/// Runs the 16-core fleet with four permanently-NaN IPS sensors and a
/// 64-record ring on every core.
fn traced_faulted_fleet(workers: usize) -> (FleetStats, FleetTelemetry) {
    let design = setup::design_mimo(InputSet::FreqCache, 2016).expect("design");
    let mut cfg = FleetConfig::new(16)
        .workers(workers)
        .epochs(300)
        .policy(ArbitrationPolicy::Proportional)
        .chip_power_cap(19.2)
        .seed(2016)
        .observer(TelemetryConfig::trace(64));
    for &core in &BAD_CORES {
        cfg = cfg.core_fault(
            core,
            FaultSpec {
                kind: FaultKind::NanMeasurement { channel: 0 },
                start_epoch: 40,
                duration: u64::MAX,
            },
        );
    }
    FleetRunner::with_shared_controller(cfg, &design.controller)
        .expect("fleet")
        .run_traced()
        .expect("validated fleet config")
}

/// Extracts an integer field like `"core":13` from one JSONL line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let start = line.find(key)? + key.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[test]
fn jsonl_trace_recovers_quarantine_epoch_and_cause_per_latched_core() {
    let (stats, telemetry) = traced_faulted_fleet(4);
    assert_eq!(stats.quarantined_cores, BAD_CORES.len(), "{stats:?}");
    assert!(telemetry.is_enabled());

    // The structured view first: one quarantine event per bad core, with
    // the NaN-measurement cause and the faulted channel attached.
    let events = telemetry.quarantines();
    assert_eq!(events.len(), BAD_CORES.len(), "{events:?}");
    for &core in &BAD_CORES {
        let ev = events
            .iter()
            .find(|e| e.core == Some(core))
            .unwrap_or_else(|| panic!("no quarantine event for core {core}: {events:?}"));
        assert_eq!(ev.cause, CauseCode::NonFiniteMeasurement, "{ev:?}");
        assert_eq!(ev.channel, Some(0), "{ev:?}");
        let reported = stats.per_core[core].quarantine_epoch;
        assert_eq!(Some(ev.epoch), reported, "core {core}");
        // The sensor dies at epoch 40; latching happens at or after that.
        assert!(ev.epoch >= 40, "{ev:?}");
    }

    // Now strictly through the exported JSONL, as an external tool would
    // read it: the quarantine lines alone must recover epoch and cause.
    let mut out = Vec::new();
    telemetry.write_jsonl(&mut out).expect("serialize");
    let text = String::from_utf8(out).expect("utf8");
    let quarantine_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"type\":\"quarantine\""))
        .collect();
    assert_eq!(quarantine_lines.len(), BAD_CORES.len(), "{text}");
    for &core in &BAD_CORES {
        let line = quarantine_lines
            .iter()
            .find(|l| field_u64(l, "\"core\":") == Some(core as u64))
            .unwrap_or_else(|| panic!("no quarantine line for core {core}"));
        assert!(
            line.contains("\"cause\":\"non_finite_measurement\""),
            "{line}"
        );
        assert!(line.contains("\"channel\":0"), "{line}");
        let epoch = field_u64(line, "\"epoch\":").expect("epoch field");
        assert_eq!(Some(epoch), stats.per_core[core].quarantine_epoch, "{line}");
    }

    // Healthy cores emit no quarantine line but still close with a
    // core_end record; every core's trace is bounded by the ring.
    assert_eq!(text.matches("\"type\":\"core_end\"").count(), 16);
    for core in &telemetry.per_core {
        assert!(core.trace.len() <= 64, "core {}", core.core);
        let quarantined = BAD_CORES.contains(&core.core);
        assert_eq!(core.quarantine.is_some(), quarantined, "core {}", core.core);
        if quarantined {
            // A permanently-dead sensor shows up in the injection ledger.
            assert!(core.injected_faults.iter().sum::<u64>() > 0);
        }
    }
}

#[test]
fn jsonl_trace_is_identical_across_worker_counts() {
    let (stats_seq, tele_seq) = traced_faulted_fleet(1);
    let (stats_par, tele_par) = traced_faulted_fleet(4);
    assert_eq!(stats_seq.digest(), stats_par.digest());

    let mut seq = Vec::new();
    let mut par = Vec::new();
    tele_seq.write_jsonl(&mut seq).expect("serialize");
    tele_par.write_jsonl(&mut par).expect("serialize");
    assert!(!seq.is_empty());
    assert_eq!(seq, par, "trace depends on the worker count");
}
