//! Scaled-down runs of every paper experiment, asserting the qualitative
//! shape each figure is supposed to show.

use mimo_arch::core::optimizer::Metric;
use mimo_arch::exp::experiments::{self, ExpConfig};
use mimo_arch::sim::InputSet;

#[test]
fn fig06_equal_weights_do_not_converge() {
    let cfg = ExpConfig::quick();
    let points = experiments::fig06(&cfg).expect("fig06");
    assert_eq!(points.len(), 4);
    let equal = &points[0];
    assert_eq!(equal.label, "Equal");
    let power = &points[2];
    // The Power set tracks power much better than Equal (the paper's
    // "reduces the P tracking error to less than 10%").
    assert!(
        power.err_power_pct < 10.0,
        "Power set err {:?}",
        power.err_power_pct
    );
    assert!(
        equal.err_power_pct > 2.0 * power.err_power_pct,
        "Equal {} vs Power {}",
        equal.err_power_pct,
        power.err_power_pct
    );
}

#[test]
fn fig07_error_decreases_then_plateaus_with_dimension() {
    let cfg = ExpConfig::quick();
    let points = experiments::fig07(&cfg).expect("fig07");
    assert_eq!(points.len(), 4);
    let dims: Vec<usize> = points.iter().map(|p| p.dimension).collect();
    assert_eq!(dims, vec![2, 4, 6, 8]);
    let total = |p: &experiments::Fig07Point| p.err_ips_pct + p.err_power_pct;
    // Dimension 4 is no worse than dimension 2; 6 and 8 add little.
    assert!(total(&points[1]) <= total(&points[0]) * 1.02);
    assert!(total(&points[3]) >= total(&points[1]) * 0.8);
}

#[test]
fn fig08_low_uncertainty_design_is_not_slower() {
    let cfg = ExpConfig::quick();
    let points = experiments::fig08(&cfg).expect("fig08");
    assert_eq!(points.len(), 2);
    // Both designs pass RSA and settle. The High-vs-Low convergence-time
    // ordering is demonstrated by the full-length `fig08` binary run; the
    // last-input-movement metric is too noise-sensitive at smoke scale to
    // assert an ordering here.
    assert_eq!(points[0].label, "High Uncertainty");
    assert_eq!(points[1].label, "Low Uncertainty");
    for p in &points {
        assert!(
            p.steady_freq.is_finite() && p.steady_cache.is_finite(),
            "design did not settle: {p:?}"
        );
    }
}

#[test]
fn fig09_mimo_beats_heuristic_beats_decoupled_on_exd() {
    let cfg = ExpConfig::quick();
    let r = experiments::optimization_experiment(&cfg, InputSet::FreqCache, Metric::EnergyDelay)
        .expect("fig09");
    assert_eq!(r.rows.len(), 6);
    // Ordering: MIMO <= Heuristic < Decoupled on average.
    let dec = r.avg_decoupled.expect("2-input run has Decoupled");
    assert!(
        r.avg_mimo < r.avg_heuristic + 0.02,
        "MIMO {} vs Heuristic {}",
        r.avg_mimo,
        r.avg_heuristic
    );
    assert!(r.avg_mimo < dec, "MIMO {} vs Decoupled {dec}", r.avg_mimo);
    // Memory-bound apps must show clear MIMO savings vs Baseline.
    let mcf = r.rows.iter().find(|row| row.app == "mcf").unwrap();
    assert!(mcf.mimo < 0.9, "mcf MIMO ratio {}", mcf.mimo);
}

#[test]
fn fig11_tracking_shapes() {
    let cfg = ExpConfig::quick();
    let r = experiments::fig11(&cfg).expect("fig11");
    // Non-responsive apps have much larger IPS errors than responsive
    // ones for every architecture.
    for a in 0..3 {
        assert!(
            r.non_responsive_avg[a].0 > 2.0 * r.responsive_avg[a].0,
            "arch {a}: {:?} vs {:?}",
            r.non_responsive_avg[a],
            r.responsive_avg[a]
        );
    }
    // MIMO's power tracking on responsive apps is tight.
    assert!(r.responsive_avg[0].1 < 10.0, "{:?}", r.responsive_avg);
}

#[test]
fn fig12_mimo_tracks_the_battery_schedule_best() {
    let cfg = ExpConfig::quick();
    let runs = experiments::fig12(&cfg).expect("fig12");
    assert_eq!(runs.len(), 6); // 2 apps x 3 architectures
    for app in ["astar", "milc"] {
        let err = |arch: &str| {
            runs.iter()
                .find(|r| r.app == app && r.arch == arch)
                .unwrap()
                .trace
                .ips_tracking_error_pct()
        };
        let (m, h, d) = (err("MIMO"), err("Heuristic"), err("Decoupled"));
        // MIMO is never the worst tracker of the three.
        assert!(
            m <= h.max(d) + 1e-9,
            "{app}: MIMO {m:.1}% vs Heuristic {h:.1}% / Decoupled {d:.1}%"
        );
    }
}
