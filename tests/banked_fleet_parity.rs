//! Fleet- and cluster-level bit-parity of banked vs per-cell stepping.
//!
//! `FleetConfig::banked` / `ClusterConfig::banked` only change the
//! execution strategy — structure-of-arrays `GovernorBank` batches vs one
//! boxed governor per core — never the science. These tests prove it on
//! controllers produced by the real design flow, across worker and shard
//! counts, and through the full quarantine choreography: a transient NaN
//! window one core recovers from (fallback rescue), and a permanent
//! actuator fault that re-latches the fallback — both of which evict the
//! core from its band's bank mid-run.

use mimo_arch::exp::setup;
use mimo_arch::fleet::{ArbitrationPolicy, ClusterConfig, ClusterRunner, FleetConfig, FleetRunner};
use mimo_arch::sim::fault::{FaultKind, FaultSpec};
use mimo_arch::sim::InputSet;

fn faulted_fleet(workers: usize, banked: bool) -> FleetConfig {
    FleetConfig::new(8)
        .workers(workers)
        .epochs(160)
        .policy(ArbitrationPolicy::Proportional)
        .seed(11)
        .banked(banked)
        // Transient: the fallback governor rescues core 2 once the NaN
        // window passes.
        .core_fault(
            2,
            FaultSpec {
                kind: FaultKind::NanMeasurement { channel: 0 },
                start_epoch: 30,
                duration: 12,
            },
        )
        // Permanent: core 5's actuator never recovers, so the fallback
        // re-latches and the arbiter pins the core at the floor budget.
        .core_fault(
            5,
            FaultSpec {
                kind: FaultKind::ActuatorStuckAt {
                    input: 0,
                    value: 0.5,
                },
                start_epoch: 60,
                duration: u64::MAX,
            },
        )
}

#[test]
fn banked_fleet_matches_per_cell_through_quarantine_and_eviction() {
    let ctrl = &setup::design_mimo(InputSet::FreqCache, 2)
        .expect("design")
        .controller;
    let per_cell = FleetRunner::with_shared_controller(faulted_fleet(1, false), ctrl)
        .unwrap()
        .run()
        .unwrap();
    // The fault plan must actually exercise the eviction path.
    assert!(
        per_cell.quarantined_cores > 0,
        "fault plan stopped quarantining; the parity below would be vacuous"
    );
    for workers in [1, 2, 4] {
        let banked = FleetRunner::with_shared_controller(faulted_fleet(workers, true), ctrl)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(per_cell, banked, "workers={workers}");
        assert_eq!(per_cell.digest(), banked.digest(), "workers={workers}");
    }
}

#[test]
fn banked_three_knob_fleet_matches_per_cell() {
    let ctrl = &setup::design_mimo(InputSet::FreqCacheRob, 3)
        .expect("design")
        .controller;
    let cfg = |banked: bool, workers: usize| {
        FleetConfig::new(6)
            .input_set(InputSet::FreqCacheRob)
            .workers(workers)
            .epochs(120)
            .policy(ArbitrationPolicy::Proportional)
            .seed(23)
            .banked(banked)
            .core_fault(
                1,
                FaultSpec {
                    kind: FaultKind::NanMeasurement { channel: 1 },
                    start_epoch: 40,
                    duration: 10,
                },
            )
    };
    let per_cell = FleetRunner::with_shared_controller(cfg(false, 2), ctrl)
        .unwrap()
        .run()
        .unwrap();
    for workers in [1, 4] {
        let banked = FleetRunner::with_shared_controller(cfg(true, workers), ctrl)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(per_cell, banked, "workers={workers}");
        assert_eq!(per_cell.digest(), banked.digest(), "workers={workers}");
    }
}

#[test]
fn banked_cluster_matches_per_cell_at_any_shard_count() {
    let ctrl = &setup::design_mimo(InputSet::FreqCache, 2)
        .expect("design")
        .controller;
    let cfg = |banked: bool, shards: usize| {
        ClusterConfig::new(4, 4)
            .shards(shards)
            .epochs(120)
            .exchange_period(25)
            .policy(ArbitrationPolicy::Proportional)
            .chip_policy(ArbitrationPolicy::Proportional)
            .seed(13)
            .banked(banked)
            .core_fault(
                1,
                2,
                FaultSpec {
                    kind: FaultKind::NanMeasurement { channel: 0 },
                    start_epoch: 35,
                    duration: 15,
                },
            )
    };
    let per_cell = ClusterRunner::with_shared_controller(cfg(false, 1), ctrl)
        .unwrap()
        .run()
        .unwrap();
    for shards in [1, 2, 4] {
        let banked = ClusterRunner::with_shared_controller(cfg(true, shards), ctrl)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(per_cell, banked, "shards={shards}");
        assert_eq!(per_cell.digest(), banked.digest(), "shards={shards}");
    }
}
