//! # mimo-arch
//!
//! A Rust reproduction of *"Using Multiple Input, Multiple Output Formal
//! Control to Maximize Resource Efficiency in Architectures"* (Pothukuchi,
//! Ansari, Voulgaris, Torrellas — ISCA 2016).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`linalg`] — dense linear algebra (LU, QR, eigenvalues, SVD,
//!   frequency responses).
//! * [`sysid`] — black-box system identification (excitation signals, ARX
//!   least squares, state-space realization, validation).
//! * [`sim`] — the configurable out-of-order processor simulator (DVFS,
//!   cache way-gating, ROB resizing, power model, SPEC-like workloads).
//! * [`core`] — the paper's contribution: MIMO LQG tracking controllers,
//!   the optimizer, robust stability analysis, plus the Heuristic and
//!   Decoupled baselines.
//! * [`exp`] — the experiment harness that regenerates every figure and
//!   table of the paper's evaluation.
//! * [`fleet`] — the many-core fleet runtime: per-core MIMO governors
//!   stepped in lock-step epochs under a chip-level power-budget arbiter.
//!
//! The [`telemetry`] facade re-exports the observability layer
//! (`mimo_core::telemetry`): the [`telemetry::Observer`] trait, the
//! ring-buffer [`telemetry::TelemetrySink`], and the JSONL/CSV exporters,
//! so application code can trace an epoch loop without naming the core
//! crate directly.
//!
//! The facade also defines the workspace-level [`Error`]/[`Result`] pair —
//! one sum type over every layer's error enum, with `From` conversions so
//! cross-layer application code can propagate any failure with `?`.
//!
//! # Quickstart
//!
//! ```
//! use mimo_arch::core::design::DesignFlow;
//! use mimo_arch::sim::{InputSet, ProcessorBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build the plant (processor + workload) and run the Figure 3 design
//! // flow: identify -> weight -> synthesize -> validate.
//! let mut plant = ProcessorBuilder::new()
//!     .app("namd")
//!     .seed(7)
//!     .input_set(InputSet::FreqCache)
//!     .build()?;
//! let design = DesignFlow::two_input().run(&mut plant)?;
//! let controller = design.into_controller();
//! assert_eq!(controller.num_inputs(), 2);
//! # Ok(())
//! # }
//! ```

mod error;

pub use error::{Error, Result};

pub use mimo_core as core;
pub use mimo_core::telemetry;
pub use mimo_exp as exp;
pub use mimo_fleet as fleet;
pub use mimo_linalg as linalg;
pub use mimo_sim as sim;
pub use mimo_sysid as sysid;
