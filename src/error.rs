//! The workspace-level error taxonomy.
//!
//! Every crate in the workspace owns a focused error enum — matrices fail
//! differently than Riccati iterations, which fail differently than fleet
//! configuration. Application code stitching the layers together, however,
//! wants one type to `?` through. [`Error`] is that type: a thin sum over
//! the five per-crate enums plus the runtime [`EpochError`], with `From`
//! conversions so any workspace `Result` propagates with `?` unchanged.
//!
//! ```
//! use mimo_arch::sim::{InputSet, ProcessorBuilder};
//!
//! fn build() -> mimo_arch::Result<mimo_arch::sim::Processor> {
//!     // SimError converts into mimo_arch::Error via `?`.
//!     Ok(ProcessorBuilder::new()
//!         .app("namd")
//!         .input_set(InputSet::FreqCache)
//!         .build()?)
//! }
//! # build().unwrap();
//! ```

use std::error::Error as StdError;
use std::fmt;

use mimo_core::{ControlError, EpochError};
use mimo_fleet::FleetError;
use mimo_linalg::LinalgError;
use mimo_sim::SimError;
use mimo_sysid::SysidError;

/// Any failure the workspace can produce, by originating layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Dense linear algebra failed (singular matrix, no convergence, …).
    Linalg(LinalgError),
    /// System identification failed (poor excitation, bad data, …).
    Sysid(SysidError),
    /// Controller design or operation failed (Riccati divergence,
    /// infeasible reference, rejected measurement, …).
    Control(ControlError),
    /// The processor simulator rejected a configuration or an actuation.
    Sim(SimError),
    /// The fleet runtime rejected a configuration or failed to build.
    Fleet(FleetError),
    /// One epoch of a closed control loop faulted at runtime; carries the
    /// epoch index, the core (in a fleet), and the root cause.
    Epoch(EpochError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Linalg(e) => write!(f, "linalg: {e}"),
            Error::Sysid(e) => write!(f, "sysid: {e}"),
            Error::Control(e) => write!(f, "control: {e}"),
            Error::Sim(e) => write!(f, "sim: {e}"),
            Error::Fleet(e) => write!(f, "fleet: {e}"),
            Error::Epoch(e) => write!(f, "epoch: {e}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            Error::Sysid(e) => Some(e),
            Error::Control(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Fleet(e) => Some(e),
            Error::Epoch(e) => Some(e),
        }
    }
}

impl From<LinalgError> for Error {
    fn from(e: LinalgError) -> Self {
        Error::Linalg(e)
    }
}

impl From<SysidError> for Error {
    fn from(e: SysidError) -> Self {
        Error::Sysid(e)
    }
}

impl From<ControlError> for Error {
    fn from(e: ControlError) -> Self {
        Error::Control(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<FleetError> for Error {
    fn from(e: FleetError) -> Self {
        Error::Fleet(e)
    }
}

impl From<EpochError> for Error {
    fn from(e: EpochError) -> Self {
        Error::Epoch(e)
    }
}

/// Convenient result alias over the workspace-level [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_core::EpochCause;

    #[test]
    fn every_layer_converts_with_question_mark() {
        fn linalg() -> Result<()> {
            Err(LinalgError::Singular)?
        }
        fn sysid() -> Result<()> {
            Err(SysidError::PoorExcitation)?
        }
        fn control() -> Result<()> {
            Err(ControlError::NonFiniteMeasurement { channel: 1 })?
        }
        fn sim() -> Result<()> {
            Err(SimError::UnknownApp { name: "x".into() })?
        }
        fn fleet() -> Result<()> {
            Err(FleetError::InvalidConfig { what: "x".into() })?
        }
        assert!(matches!(linalg(), Err(Error::Linalg(_))));
        assert!(matches!(sysid(), Err(Error::Sysid(_))));
        assert!(matches!(control(), Err(Error::Control(_))));
        assert!(matches!(sim(), Err(Error::Sim(_))));
        assert!(matches!(fleet(), Err(Error::Fleet(_))));
    }

    #[test]
    fn epoch_errors_carry_their_context_through() {
        let e = EpochError {
            epoch: 41,
            core: Some(3),
            cause: EpochCause::NonFiniteMeasurement { channel: 0 },
        };
        let top: Error = e.into();
        let msg = top.to_string();
        assert!(msg.contains("epoch 41"), "{msg}");
        assert!(msg.contains("core 3"), "{msg}");
        assert!(top.source().is_some());
    }

    #[test]
    fn display_prefixes_the_layer() {
        let top: Error = LinalgError::Singular.into();
        assert!(top.to_string().starts_with("linalg: "));
    }
}
